"""Incremental maintenance of materialized Datalog programs.

This is the computation the paper's schedulers exist to serve: a
program has been materialized, the base data (EDB) changes, and the
derived facts (IDB) must be brought up to date without recomputing from
scratch.

The engine processes strata bottom-up, carrying net fact changes as a
weighted :class:`~repro.datalog.zset.ZSetDelta` (+1 = net insert, −1 =
net retract per fact) from each stratum to the next — a fact deleted by
over-deletion and restored by re-derivation cancels to weight 0 and
never leaves the stratum:

* **Positive strata** (no changed negated input) run DRed
  (delete-and-rederive, Gupta–Mumick–Subrahmanian): (1) *over-delete* —
  propagate Δ⁻ through the rules, removing every fact with a derivation
  that used a deleted fact (joins evaluate against the pre-deletion
  view, so multi-hop derivations are found); (2) *re-derive* — put back
  over-deleted facts that still have an alternative derivation from the
  surviving database; (3) *insert* — semi-naive propagation of Δ⁺.
* **Negation-affected strata** (some rule negates a predicate whose
  extension changed) are recomputed from the current lower strata and
  diffed — stratified negation makes insertions act as deletions for
  consumers and vice versa, and the recompute-and-diff strategy handles
  both directions exactly.

The deletion phase of a positive stratum is a strategy hook
(:meth:`IncrementalEngine._delete_phase`): this class implements DRed's
over-delete + re-derive; :class:`~repro.datalog.bf
.BackwardForwardEngine` overrides it with Backward/Forward's
candidate-then-verify pass that never deletes a fact it will put back.

The per-stratum events are recorded in a :class:`MaintenanceTrace` —
the *activated tasks* of Section II-A; :mod:`repro.datalog.compiler`
turns updates into the activation pattern of a
:class:`~repro.tasks.JobTrace`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ast import Program, Rule
from .database import Database, Relation
from .depgraph import DependencyGraph
from .seminaive import seminaive_evaluate
from .unify import eval_rule, instantiate_head, join_body
from .zset import ZSetDelta, apply_zdelta, effective_zdelta

__all__ = [
    "Delta",
    "MaintenanceTrace",
    "IncrementalEngine",
    "apply_delta",
    "merge_deltas",
    "ZSetDelta",
    "apply_zdelta",
    "effective_zdelta",
]


@dataclass
class Delta:
    """An update: EDB facts to insert and to delete.

    The builder methods keep the two sets disjoint — the *later*
    operation on a fact wins, so ``.insert(p, f).delete(p, f)`` is a
    pure deletion and the reverse a pure insertion. A delta whose dicts
    were populated directly may still hold a fact in both sets; for
    those, :func:`apply_delta` applies deletions first, so the fact ends
    up present.
    """

    insertions: dict[str, set[tuple]] = field(default_factory=dict)
    deletions: dict[str, set[tuple]] = field(default_factory=dict)

    def insert(self, predicate: str, fact: tuple) -> "Delta":
        """Record an EDB insertion (superseding any queued deletion of
        the same fact); returns self for chaining."""
        gone = self.deletions.get(predicate)
        if gone is not None:
            gone.discard(fact)
        self.insertions.setdefault(predicate, set()).add(fact)
        return self

    def delete(self, predicate: str, fact: tuple) -> "Delta":
        """Record an EDB deletion (superseding any queued insertion of
        the same fact); returns self for chaining."""
        ins = self.insertions.get(predicate)
        if ins is not None:
            ins.discard(fact)
        self.deletions.setdefault(predicate, set()).add(fact)
        return self

    @property
    def is_empty(self) -> bool:
        """Whether the update changes nothing."""
        return not any(self.insertions.values()) and not any(
            self.deletions.values()
        )

    def touched_predicates(self) -> set[str]:
        """Predicates with at least one inserted or deleted fact."""
        return {p for p, s in self.insertions.items() if s} | {
            p for p, s in self.deletions.items() if s
        }

    def as_zdelta(self) -> ZSetDelta:
        """This update as a weighted Z-set (insert = +1, delete = −1)."""
        return ZSetDelta.from_delta(self)


def apply_delta(edb: Database, delta: Delta) -> Database:
    """A copy of ``edb`` with ``delta`` applied (deletions first)."""
    out = edb.copy()
    for pred, facts in delta.deletions.items():
        rel = out.relations.get(pred)
        if rel is not None:
            for f in facts:
                rel.discard(f)
    for pred, facts in delta.insertions.items():
        for f in facts:
            out.relation(pred, len(f)).add(f)
    return out


def merge_deltas(deltas: list[Delta]) -> Delta:
    """Coalesce sequential updates into one equivalent :class:`Delta`.

    ``apply_delta(db, merge_deltas([d1, d2]))`` equals
    ``apply_delta(apply_delta(db, d1), d2)`` for every ``db``: later
    operations win, so an insert followed by a delete nets out to a
    delete and vice versa. This is what the runtime service uses to
    coalesce batches that queued up while a maintenance round was in
    flight.
    """
    merged = Delta()
    for d in deltas:
        for pred, facts in d.deletions.items():
            ins = merged.insertions.get(pred)
            for f in facts:
                if ins is not None:
                    ins.discard(f)
                merged.deletions.setdefault(pred, set()).add(f)
        for pred, facts in d.insertions.items():
            gone = merged.deletions.get(pred)
            for f in facts:
                if gone is not None:
                    gone.discard(f)
                merged.insertions.setdefault(pred, set()).add(f)
    return merged


@dataclass
class MaintenanceTrace:
    """Which maintenance steps actually changed facts.

    ``events`` is a list of ``(phase, stratum_idx, iteration, rule_idx,
    n_changed)`` with phase ∈ {"overdelete", "rederive", "insert",
    "recompute"}.
    """

    events: list[tuple[str, int, int, int, int]] = field(default_factory=list)
    #: per-predicate net fact changes over the whole update
    net_inserted: dict[str, set[tuple]] = field(default_factory=dict)
    net_deleted: dict[str, set[tuple]] = field(default_factory=dict)

    def record(
        self, phase: str, stratum: int, iteration: int, rule: int, n: int
    ) -> None:
        """Log one maintenance step that changed ``n`` facts."""
        if n:
            self.events.append((phase, stratum, iteration, rule, n))

    def total_changed(self) -> int:
        """Total fact derivations touched across all steps."""
        return sum(e[4] for e in self.events)

    def net_zdelta(self) -> ZSetDelta:
        """The net materialization change as a weighted Z-set."""
        out = ZSetDelta()
        for pred, facts in self.net_inserted.items():
            for f in facts:
                out.add(pred, f, 1)
        for pred, facts in self.net_deleted.items():
            for f in facts:
                out.add(pred, f, -1)
        return out


class IncrementalEngine:
    """Maintains one materialized program instance across updates."""

    def __init__(self, program: Program, edb: Database | None = None) -> None:
        self.program = program
        self.depgraph = DependencyGraph(program)
        self.strata = self.depgraph.stratify()
        self.edb_predicates = program.edb_predicates()
        base = edb.copy() if edb is not None else Database()
        self.db, _ = seminaive_evaluate(program, base)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, set[tuple]]:
        """Current materialized facts (for oracle comparisons)."""
        return self.db.as_dict()

    def apply(self, delta: "Delta | ZSetDelta") -> MaintenanceTrace:
        """Apply an EDB update incrementally; returns the step trace.

        Accepts either a set-semantics :class:`Delta` or a weighted
        :class:`ZSetDelta` (positive weights insert, negative delete).
        """
        if isinstance(delta, ZSetDelta):
            delta = delta.to_delta()
        for pred in delta.touched_predicates():
            if pred not in self.edb_predicates:
                raise ValueError(
                    f"cannot update derived predicate {pred!r}; updates "
                    "target EDB predicates only"
                )
        trace = MaintenanceTrace()
        if delta.is_empty:
            return trace

        # Net change accumulator: weights stay in {-1, 0, +1} because
        # every record below is guarded by an actual set transition
        # (``add``/``discard`` returning True), and a delete followed by
        # a re-insert cancels to weight 0 inside the Z-set.
        net = ZSetDelta()
        # apply the EDB update itself
        for pred, facts in delta.deletions.items():
            rel = self.db.relations.get(pred)
            if rel is None:
                continue
            for f in facts:
                if rel.discard(f):
                    net.delete(pred, f)
        for pred, facts in delta.insertions.items():
            if not facts:  # normalization can leave empty sets behind
                continue
            rel = self.db.relation(pred, len(next(iter(facts))))
            for f in facts:
                if rel.add(f):
                    net.insert(pred, f)

        for si, stratum in enumerate(self.strata):
            stratum_set = set(stratum)
            rules = [
                (ri, r)
                for ri, r in enumerate(self.program.proper_rules)
                if r.head.predicate in stratum_set
            ]
            if not rules:
                continue
            # aggregation, like negation, has no incremental delta form
            # here: any input change triggers a recompute of the stratum
            sensitive_inputs = {
                lit.atom.predicate
                for _, r in rules
                for lit in r.body
                if lit.atom is not None
                and (lit.negated or r.has_aggregate)
            }
            if any(net.touches(q) for q in sensitive_inputs):
                self._recompute_stratum(si, stratum_set, rules, net, trace)
            elif any(
                net.touches(lit.atom.predicate)
                for _, r in rules
                for lit in r.body
                if lit.atom is not None
            ):
                self._delete_phase(si, stratum_set, rules, net, trace)
                self._insert_stratum(si, stratum_set, rules, net, trace)

        trace.net_inserted = net.positive()
        trace.net_deleted = net.negative()
        return trace

    # ------------------------------------------------------------------
    # DRed phases for a positive stratum
    # ------------------------------------------------------------------
    def _delete_phase(
        self, si, stratum_set, rules, net: ZSetDelta, trace
    ) -> None:
        """Propagate deletions through one positive stratum.

        The strategy hook: DRed over-deletes then re-derives;
        subclasses may substitute any scheme that leaves ``self.db``
        and ``net`` in the same end state.
        """
        self._overdelete_stratum(si, stratum_set, rules, net, trace)
        self._rederive_stratum(si, stratum_set, rules, net, trace)

    def _old_view(self, net: ZSetDelta) -> Database:
        """The pre-deletion database view: current facts plus everything
        deleted so far this update (over-deletion joins must see them)."""
        negative = net.negative()
        if not negative:
            return self.db
        view = Database(dict(self.db.relations))
        for pred, gone in negative.items():
            arity = len(next(iter(gone)))
            merged = Relation(pred, arity)
            existing = self.db.relations.get(pred)
            if existing is not None:
                for f in existing:
                    merged.add(f)
            for f in gone:
                merged.add(f)
            view.relations[pred] = merged
        return view

    def _overdelete_stratum(
        self, si, stratum_set, rules, net: ZSetDelta, trace
    ) -> None:
        # deletions visible so far (lower strata + EDB)
        wave = net.negative()
        iteration = 0
        while wave:
            view = self._old_view(net)
            next_wave: dict[str, set[tuple]] = {}
            for ri, rule in rules:
                n_changed = 0
                for pos, lit in enumerate(rule.body):
                    if (
                        lit.atom is None
                        or lit.negated
                        or lit.atom.predicate not in wave
                    ):
                        continue
                    over = Relation(lit.atom.predicate, lit.atom.arity)
                    for f in wave[lit.atom.predicate]:
                        over.add(f)
                    victims = [
                        instantiate_head(rule.head, subst)
                        for subst in join_body(
                            rule.body,
                            view,
                            delta_overrides={lit.atom.predicate: over},
                            delta_at=pos,
                        )
                    ]
                    head = rule.head.predicate
                    rel = self.db.relations.get(head)
                    for fact in victims:
                        if rel is not None and fact in rel:
                            rel.discard(fact)
                            net.delete(head, fact)
                            next_wave.setdefault(head, set()).add(fact)
                            n_changed += 1
                trace.record("overdelete", si, iteration, ri, n_changed)
            wave = {
                p: s for p, s in next_wave.items() if p in stratum_set
            }
            iteration += 1

    def _rederive_stratum(
        self, si, stratum_set, rules, net: ZSetDelta, trace
    ) -> None:
        iteration = 0
        changed = True
        while changed:
            changed = False
            for ri, rule in rules:
                head = rule.head.predicate
                candidates = net.negative().get(head)
                if not candidates:
                    continue
                rederived = {
                    fact
                    for fact in (
                        instantiate_head(rule.head, s)
                        for s in join_body(rule.body, self.db)
                    )
                    if fact in candidates
                }
                n = 0
                for fact in rederived:
                    if self.db.add_fact(head, fact):
                        net.insert(head, fact)  # cancels the delete
                        n += 1
                        changed = True
                trace.record("rederive", si, iteration, ri, n)
            iteration += 1

    def _insert_stratum(
        self, si, stratum_set, rules, net: ZSetDelta, trace
    ) -> None:
        wave = net.positive()
        iteration = 0
        while wave:
            delta_rels: dict[str, Relation] = {}
            for p, s in wave.items():
                if not s:
                    continue
                r = Relation(p, len(next(iter(s))))
                for f in s:
                    r.add(f)
                delta_rels[p] = r
            next_wave: dict[str, set[tuple]] = {}
            for ri, rule in rules:
                n_changed = 0
                for pos, lit in enumerate(rule.body):
                    if (
                        lit.atom is None
                        or lit.negated
                        or lit.atom.predicate not in delta_rels
                    ):
                        continue
                    derived = [
                        instantiate_head(rule.head, subst)
                        for subst in join_body(
                            rule.body,
                            self.db,
                            delta_overrides=delta_rels,
                            delta_at=pos,
                        )
                    ]
                    head = rule.head.predicate
                    for fact in derived:
                        if self.db.add_fact(head, fact):
                            net.insert(head, fact)
                            next_wave.setdefault(head, set()).add(fact)
                            n_changed += 1
                trace.record("insert", si, iteration, ri, n_changed)
            wave = {
                p: s for p, s in next_wave.items() if p in stratum_set
            }
            iteration += 1

    # ------------------------------------------------------------------
    # recompute-and-diff for a negation-affected stratum
    # ------------------------------------------------------------------
    def _recompute_stratum(
        self, si, stratum_set, rules, net: ZSetDelta, trace
    ) -> None:
        heads = {r.head.predicate for _, r in rules}
        old: dict[str, set[tuple]] = {}
        for p in heads:
            rel = self.db.relations.get(p)
            old[p] = set(rel) if rel is not None else set()
            if rel is not None:
                # IDB predicates hold derived facts only; program facts
                # for them are re-seeded below
                fresh = Relation(p, rel.arity)
                self.db.relations[p] = fresh
        for fact_rule in self.program.facts:
            if fact_rule.head.predicate in heads:
                self.db.add_fact(
                    fact_rule.head.predicate,
                    tuple(t.value for t in fact_rule.head.terms),  # type: ignore[union-attr]
                )
        # local naive fixpoint over the stratum's rules
        changed = True
        while changed:
            changed = False
            for ri, rule in rules:
                derived = eval_rule(rule, self.db)
                n = 0
                for fact in derived:
                    if self.db.add_fact(rule.head.predicate, fact):
                        n += 1
                        changed = True
                trace.record("recompute", si, 0, ri, n)
        for p in heads:
            rel = self.db.relations.get(p)
            new = set(rel) if rel is not None else set()
            for fact in new - old[p]:
                net.insert(p, fact)
            for fact in old[p] - new:
                net.delete(p, fact)
