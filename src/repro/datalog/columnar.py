"""Columnar (interned) relation storage and batch hash-join evaluation.

The row evaluator in :mod:`repro.datalog.unify` enumerates rule-body
substitutions one tuple at a time, copying a ``{var: value}`` dict per
matched fact. That is the hot loop of every maintenance round. This
module replaces it with a column-oriented pipeline in the style of the
differential-Datalog interpreters cited in PAPERS.md:

* every constant is *interned* once into a small integer id through a
  shared :class:`InternTable` (one table per :class:`InternPool`, so
  ids are join-compatible across predicates), with per-predicate fact
  dictionaries memoizing whole-row encodings;
* relations are mirrored as :class:`ColumnarRelation` — sets of interned
  id-rows plus hash indexes per bound-position pattern, maintained
  incrementally as the underlying :class:`~repro.datalog.database
  .Relation` absorbs weighted deltas;
* :func:`eval_rule_columnar` compiles each ``(rule, join order,
  Δ-position)`` into a static step program (scans, filters,
  assignments, negation probes, head projection/aggregation) and runs
  the whole binding *batch* through each step — a vectorized hash join:
  build once on the interned key columns, probe in bulk, no per-tuple
  dict copies;
* :class:`ColumnarZSet` is the interned twin of
  :class:`~repro.datalog.zset.ZSetDelta`: the same pointwise weight
  algebra over id-rows, convertible losslessly in both directions.

The step programs are compiled from the same deferral fixpoint
:func:`~repro.datalog.unify.join_body` runs dynamically — variable
binding order is static per (rule, order, Δ-position), so filters and
assignments can be *scheduled* at compile time at exactly the point the
dynamic evaluator would first fire them. The two evaluators therefore
produce identical fact sets (and identical "unresolved filter" errors
on unsafe rules), which the differential and property test suites pin.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from .ast import Aggregate, Constant, Rule, Variable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .database import Database
    from .zset import ZSetDelta

__all__ = [
    "InternTable",
    "InternPool",
    "ColumnarRelation",
    "ColumnarZSet",
    "eval_rule_columnar",
]


# ----------------------------------------------------------------------
# interning
# ----------------------------------------------------------------------
class InternTable:
    """A bijection value ↔ small integer id, append-only.

    Ids are dense (``0 .. len-1``) so extern is a list index, not a
    dict probe. The table never forgets: values are immutable Datalog
    constants and the id space must stay stable for every columnar
    index built on it.
    """

    __slots__ = ("ids", "values")

    def __init__(self) -> None:
        self.ids: dict[object, int] = {}
        self.values: list[object] = []

    def __len__(self) -> int:
        return len(self.values)

    def intern(self, value: object) -> int:
        i = self.ids.get(value)
        if i is None:
            i = len(self.values)
            self.ids[value] = i
            self.values.append(value)
        return i

    def extern(self, i: int) -> object:
        return self.values[i]


class InternPool:
    """Shared intern table plus per-predicate fact-row dictionaries.

    One pool serves one evaluation domain (a plan cache, a service):
    the single :class:`InternTable` keeps ids join-compatible across
    predicates, while ``_fact_rows[pred]`` memoizes whole-fact → id-row
    encodings per predicate so repeated mirror builds and delta
    application pay one dict probe per fact instead of one per column.

    ``builds``/``probes`` count columnar mirror constructions and
    hash-join probe operations — surfaced in ``RoundMetrics`` and the
    execute trace span.
    """

    __slots__ = ("table", "_fact_rows", "builds", "probes")

    def __init__(self) -> None:
        self.table = InternTable()
        self._fact_rows: dict[str, dict[tuple, tuple]] = {}
        self.builds = 0
        self.probes = 0

    def __len__(self) -> int:
        return len(self.table)

    def intern(self, value: object) -> int:
        return self.table.intern(value)

    def extern(self, i: int) -> object:
        return self.table.values[i]

    def intern_fact(self, pred: str, fact: tuple) -> tuple:
        """Interned id-row for ``fact``, memoized per predicate."""
        memo = self._fact_rows.get(pred)
        if memo is None:
            memo = self._fact_rows[pred] = {}
        row = memo.get(fact)
        if row is None:
            intern = self.table.intern
            row = tuple(intern(v) for v in fact)
            memo[fact] = row
        return row

    def extern_row(self, row: tuple) -> tuple:
        """Value-space fact for an interned id-row."""
        values = self.table.values
        return tuple(values[i] for i in row)

    def stats(self) -> dict[str, int]:
        """Counters for metrics/span reporting."""
        return {
            "intern_table_size": len(self.table),
            "columnar_builds": self.builds,
            "columnar_probes": self.probes,
        }


# ----------------------------------------------------------------------
# columnar relations
# ----------------------------------------------------------------------
class ColumnarRelation:
    """A set of interned id-rows with incremental per-pattern indexes.

    The columnar twin of :class:`~repro.datalog.database.Relation`:
    indexes map a bound-position pattern to buckets of rows, built on
    first probe and maintained by :meth:`add_row`/:meth:`discard_row`.
    Single-position patterns key buckets by the bare id (no tuple
    allocation on the probe path).
    """

    __slots__ = ("name", "arity", "pool", "rows", "_indexes")

    def __init__(self, name: str, arity: int, pool: InternPool) -> None:
        self.name = name
        self.arity = arity
        self.pool = pool
        self.rows: set[tuple] = set()
        self._indexes: dict[tuple[int, ...], dict[object, set[tuple]]] = {}

    @classmethod
    def from_facts(
        cls, pool: InternPool, name: str, arity: int,
        facts: Iterable[tuple],
    ) -> "ColumnarRelation":
        out = cls(name, arity, pool)
        intern_fact = pool.intern_fact
        out.rows = {intern_fact(name, f) for f in facts}
        pool.builds += 1
        return out

    def __len__(self) -> int:
        return len(self.rows)

    def __contains__(self, row: tuple) -> bool:
        return row in self.rows

    def facts(self) -> Iterator[tuple]:
        """Iterate rows back in value space."""
        values = self.pool.table.values
        for row in self.rows:
            yield tuple(values[i] for i in row)

    # ------------------------------------------------------------------
    def add_row(self, row: tuple) -> bool:
        if row in self.rows:
            return False
        self.rows.add(row)
        for positions, index in self._indexes.items():
            if len(positions) == 1:
                key: object = row[positions[0]]
            else:
                key = tuple(row[p] for p in positions)
            bucket = index.get(key)
            if bucket is None:
                index[key] = {row}
            else:
                bucket.add(row)
        return True

    def discard_row(self, row: tuple) -> bool:
        if row not in self.rows:
            return False
        self.rows.remove(row)
        for positions, index in self._indexes.items():
            if len(positions) == 1:
                key: object = row[positions[0]]
            else:
                key = tuple(row[p] for p in positions)
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(row)
                if not bucket:
                    del index[key]
        return True

    def add_fact(self, fact: tuple) -> bool:
        return self.add_row(self.pool.intern_fact(self.name, fact))

    def discard_fact(self, fact: tuple) -> bool:
        return self.discard_row(self.pool.intern_fact(self.name, fact))

    # ------------------------------------------------------------------
    def index(
        self, positions: tuple[int, ...]
    ) -> dict[object, set[tuple]]:
        """Get-or-build the hash index on ``positions`` (build counted)."""
        index = self._indexes.get(positions)
        if index is None:
            index = {}
            if len(positions) == 1:
                p = positions[0]
                for row in self.rows:
                    key = row[p]
                    bucket = index.get(key)
                    if bucket is None:
                        index[key] = {row}
                    else:
                        bucket.add(row)
            else:
                for row in self.rows:
                    key = tuple(row[p] for p in positions)
                    bucket = index.get(key)
                    if bucket is None:
                        index[key] = {row}
                    else:
                        bucket.add(row)
            self._indexes[positions] = index
            self.pool.builds += 1
        return index

    def index_patterns(self) -> tuple[tuple[int, ...], ...]:
        """Currently-built bound-position patterns (for tests)."""
        return tuple(sorted(self._indexes))

    def clone(self) -> "ColumnarRelation":
        """Copy rows *and* built indexes (for ``copy_indexed``)."""
        out = ColumnarRelation(self.name, self.arity, self.pool)
        out.rows = set(self.rows)
        for positions, index in list(self._indexes.items()):
            out._indexes[positions] = {
                key: set(bucket) for key, bucket in index.items()
            }
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarRelation({self.name}/{self.arity}, "
            f"{len(self.rows)} rows)"
        )


# ----------------------------------------------------------------------
# columnar Z-sets
# ----------------------------------------------------------------------
class ColumnarZSet:
    """A weighted delta over interned id-rows.

    Same pointwise algebra as :class:`~repro.datalog.zset.ZSetDelta`
    (weight-zero entries vanish eagerly), but keyed by id-rows so the
    payload is a set of small-int column tuples. Converts losslessly to
    and from the dict form; the property suite pins add/negate/merge
    equivalence against the value-space algebra.
    """

    __slots__ = ("pool", "weights")

    def __init__(self, pool: InternPool) -> None:
        self.pool = pool
        self.weights: dict[str, dict[tuple, int]] = {}

    # ------------------------------------------------------------------
    @classmethod
    def from_zdelta(
        cls, pool: InternPool, zdelta: "ZSetDelta"
    ) -> "ColumnarZSet":
        out = cls(pool)
        intern_fact = pool.intern_fact
        for pred, facts in zdelta.weights.items():
            out.weights[pred] = {
                intern_fact(pred, f): w for f, w in facts.items()
            }
        return out

    def to_zdelta(self) -> "ZSetDelta":
        from .zset import ZSetDelta

        extern_row = self.pool.extern_row
        out = ZSetDelta()
        for pred, rows in self.weights.items():
            if rows:
                out.weights[pred] = {
                    extern_row(r): w for r, w in rows.items()
                }
        return out

    # ------------------------------------------------------------------
    def add_row(self, pred: str, row: tuple, weight: int = 1) -> "ColumnarZSet":
        """Add ``weight`` to ``(pred, row)``; zero entries vanish."""
        if weight == 0:
            return self
        rows = self.weights.setdefault(pred, {})
        w = rows.get(row, 0) + weight
        if w == 0:
            del rows[row]
            if not rows:
                del self.weights[pred]
        else:
            rows[row] = w
        return self

    def add(self, pred: str, fact: tuple, weight: int = 1) -> "ColumnarZSet":
        """Value-space add — interns the fact, then :meth:`add_row`."""
        return self.add_row(pred, self.pool.intern_fact(pred, fact), weight)

    def insert(self, pred: str, fact: tuple) -> "ColumnarZSet":
        return self.add(pred, fact, 1)

    def delete(self, pred: str, fact: tuple) -> "ColumnarZSet":
        return self.add(pred, fact, -1)

    def merge(self, other: "ColumnarZSet") -> "ColumnarZSet":
        if other.pool is not self.pool:
            raise ValueError("cannot merge ColumnarZSets from different pools")
        for pred, rows in other.weights.items():
            for row, w in rows.items():
                self.add_row(pred, row, w)
        return self

    def __add__(self, other: "ColumnarZSet") -> "ColumnarZSet":
        return self.copy().merge(other)

    def __neg__(self) -> "ColumnarZSet":
        out = ColumnarZSet(self.pool)
        for pred, rows in self.weights.items():
            out.weights[pred] = {r: -w for r, w in rows.items()}
        return out

    def copy(self) -> "ColumnarZSet":
        out = ColumnarZSet(self.pool)
        out.weights = {p: dict(rows) for p, rows in self.weights.items()}
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnarZSet):
            return NotImplemented
        if other.pool is self.pool:
            return self.weights == other.weights
        return self.to_zdelta() == other.to_zdelta()

    # ------------------------------------------------------------------
    def weight(self, pred: str, fact: tuple) -> int:
        """Weight of one value-space fact (0 when absent)."""
        memo = self.pool._fact_rows.get(pred)
        row = memo.get(fact) if memo is not None else None
        if row is None:
            return 0
        return self.weights.get(pred, {}).get(row, 0)

    @property
    def is_empty(self) -> bool:
        return not self.weights

    def op_count(self) -> int:
        return sum(
            abs(w) for rows in self.weights.values() for w in rows.values()
        )

    def touched_predicates(self) -> set[str]:
        return set(self.weights)

    def relation(self, pred: str, sign: int = 1) -> ColumnarRelation:
        """One sign's rows for ``pred`` as an indexable delta relation."""
        rows = self.weights.get(pred, {})
        side = {
            r for r, w in rows.items() if (w > 0 if sign > 0 else w < 0)
        }
        arity = len(next(iter(side))) if side else 0
        out = ColumnarRelation(pred, arity, self.pool)
        out.rows = side
        return out

    def apply_to(self, crel: ColumnarRelation) -> int:
        """Patch a columnar relation in place; returns rows changed."""
        changed = 0
        for row, w in self.weights.get(crel.name, {}).items():
            if w > 0:
                changed += crel.add_row(row)
            else:
                changed += crel.discard_row(row)
        return changed

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ColumnarZSet({self.to_zdelta()!r})"


# ----------------------------------------------------------------------
# rule compilation
# ----------------------------------------------------------------------
# the comparison/arithmetic tables are tiny and duplicated from
# repro.datalog.unify on purpose: importing unify here would close an
# import cycle through database.py (which mirrors into this module)
_CMP: dict[str, Callable[[object, object], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}

_ARITH: dict[str, Callable[[object, object], object]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
}

# step tags
_SCAN, _FILTER, _BIND, _NEG, _UNRESOLVED = 0, 1, 2, 3, 4


class _RulePlan:
    """A compiled (rule, order, Δ-position) step program."""

    __slots__ = ("steps", "emit")

    def __init__(self, steps: list[tuple], emit: tuple) -> None:
        self.steps = tuple(steps)
        self.emit = emit


def _value_fn(term, slots: dict[str, int]):
    """Compile a term to ``(row, values) -> value``."""
    if isinstance(term, Constant):
        v = term.value
        return lambda row, values: v
    s = slots[term.name]
    return lambda row, values: values[row[s]]


def _cmp_filter(cmp, slots: dict[str, int]):
    op = _CMP[cmp.op]
    left = _value_fn(cmp.left, slots)
    right = _value_fn(cmp.right, slots)

    def run(rows: list, values: list) -> list:
        return [r for r in rows if op(left(r, values), right(r, values))]

    return run


def _assign_value_fn(assign, slots: dict[str, int]):
    left = _value_fn(assign.left, slots)
    if assign.op is None:
        return left
    op = _ARITH[assign.op]
    right = _value_fn(assign.right, slots)
    return lambda row, values: op(left(row, values), right(row, values))


def _assign_bind(assign, slots: dict[str, int]):
    fn = _assign_value_fn(assign, slots)

    def run(rows: list, values: list, pool: InternPool) -> list:
        intern = pool.intern
        return [r + (intern(fn(r, values)),) for r in rows]

    return run


def _assign_check(assign, slots: dict[str, int]):
    fn = _assign_value_fn(assign, slots)
    target = slots[assign.target.name]

    def run(rows: list, values: list) -> list:
        return [r for r in rows if values[r[target]] == fn(r, values)]

    return run


def _ground_fn(terms, slots: dict[str, int]):
    """Compile an atom's terms to ``(row, values) -> value fact``."""
    parts = tuple(_value_fn(t, slots) for t in terms)

    def run(row: tuple, values: list) -> tuple:
        return tuple(p(row, values) for p in parts)

    return run


def _compile_rule(
    rule: Rule, order: tuple[int, ...] | None, delta_at: int | None
) -> _RulePlan:
    """Statically schedule the deferral fixpoint ``join_body`` runs.

    Binding order is fixed per (rule, order, Δ-position), so each
    deferred comparison / assignment / negation is emitted at exactly
    the step where the dynamic evaluator would first find all its
    variables bound. Literals that never become evaluable compile to a
    trailing ``_UNRESOLVED`` step that raises only if a binding row
    actually reaches it — byte-compatible with ``join_body``'s
    "unresolved filters" error on unsafe rules.
    """
    body = rule.body
    if order is None:
        seq: tuple[int, ...] = tuple(range(len(body)))
    else:
        if sorted(order) != list(range(len(body))):
            raise ValueError(
                f"order {order!r} is not a permutation of body indices"
            )
        seq = tuple(order)

    slots: dict[str, int] = {}
    steps: list[tuple] = []
    pending: list = []

    def flush() -> None:
        progressed = True
        while progressed:
            progressed = False
            still: list = []
            for lit in pending:
                if lit.is_assignment:
                    a = lit.assignment
                    if all(v.name in slots for v in a.inputs()):
                        if a.target.name in slots:
                            steps.append(
                                (_FILTER, _assign_check(a, slots))
                            )
                        else:
                            fn = _assign_bind(a, slots)
                            slots[a.target.name] = len(slots)
                            steps.append((_BIND, fn))
                        progressed = True
                    else:
                        still.append(lit)
                elif all(v.name in slots for v in lit.variables()):
                    if lit.is_comparison:
                        steps.append(
                            (_FILTER, _cmp_filter(lit.comparison, slots))
                        )
                    else:  # negated ground atom
                        steps.append((
                            _NEG,
                            lit.atom.predicate,
                            _ground_fn(lit.atom.terms, slots),
                        ))
                    progressed = True
                else:
                    still.append(lit)
            pending[:] = still

    for idx in seq:
        lit = body[idx]
        if lit.is_comparison or lit.is_assignment or lit.negated:
            pending.append(lit)
            flush()
            continue
        atom = lit.atom
        keyed: list[tuple[int, tuple]] = []
        new: dict[str, int] = {}
        repeats: list[tuple[int, int]] = []
        for pos, t in enumerate(atom.terms):
            if isinstance(t, Constant):
                keyed.append((pos, (True, t.value)))
            elif t.name in slots:
                keyed.append((pos, (False, slots[t.name])))
            elif t.name in new:
                repeats.append((new[t.name], pos))
            else:
                new[t.name] = pos
        keyed.sort()
        pattern = tuple(pos for pos, _src in keyed)
        sources = tuple(src for _pos, src in keyed)
        new_positions = tuple(new.values())
        for name in new:
            slots[name] = len(slots)
        use_delta = delta_at is not None and idx == delta_at
        steps.append((
            _SCAN, atom.predicate, use_delta, pattern, sources,
            new_positions, tuple(repeats),
        ))
        flush()

    flush()
    if pending:
        steps.append((_UNRESOLVED, tuple(pending)))

    # head projection / aggregation
    terms = rule.head.terms
    if not rule.head.has_aggregate():
        emit: tuple = ("plain", tuple(
            (True, t.value) if isinstance(t, Constant)
            else (False, slots[t.name])
            for t in terms
        ))
    else:
        agg = next(t for t in terms if isinstance(t, Aggregate))
        group = tuple(
            (True, t.value) if isinstance(t, Constant)
            else (False, slots[t.name])
            for t in terms
            if not isinstance(t, Aggregate)
        )
        is_agg = tuple(isinstance(t, Aggregate) for t in terms)
        emit = ("agg", agg.op, slots[agg.var.name], group, is_agg)
    return _RulePlan(steps, emit)


#: (rule, order, Δ-position) → compiled plan. Pool-independent: plans
#: hold value-space constants and slot indices only, so two services
#: with separate InternPools share compiled plans safely.
_RULE_PLANS: dict[tuple, _RulePlan] = {}
_RULE_PLAN_CAP = 4096


def _plan_for(
    rule: Rule, order: tuple[int, ...] | None, delta_at: int | None
) -> _RulePlan:
    key = (rule, order, delta_at)
    plan = _RULE_PLANS.get(key)
    if plan is None:
        if len(_RULE_PLANS) >= _RULE_PLAN_CAP:
            _RULE_PLANS.clear()
        plan = _compile_rule(rule, order, delta_at)
        _RULE_PLANS[key] = plan
    return plan


# ----------------------------------------------------------------------
# evaluation
# ----------------------------------------------------------------------
def _run_scan(
    step: tuple, crel: ColumnarRelation | None, rows: list,
    pool: InternPool,
) -> list:
    """One vectorized hash-join step: probe all rows against one atom."""
    _tag, _pred, _ud, pattern, sources, new_positions, repeats = step
    if crel is None:
        return []
    out: list = []
    nnew = len(new_positions)
    if not pattern:
        # no bound positions: cross join against the whole relation
        base: Iterable[tuple] = crel.rows
        if repeats:
            base = [
                f for f in base
                if all(f[a] == f[b] for a, b in repeats)
            ]
        pool.probes += len(rows)
        if nnew == 1:
            p0 = new_positions[0]
            for row in rows:
                for f in base:
                    out.append(row + (f[p0],))
        else:
            for row in rows:
                for f in base:
                    out.append(row + tuple(f[p] for p in new_positions))
        return out

    intern = pool.intern
    # resolve key sources: constants intern to ids here (plans are
    # pool-independent), bound variables read their slot per row
    resolved = tuple(
        (True, intern(payload)) if is_const else (False, payload)
        for is_const, payload in sources
    )
    if len(pattern) == crel.arity:
        # fully bound: membership probe, no index (mirrors Relation.match)
        target = crel.rows
        pool.probes += len(rows)
        for row in rows:
            key = tuple(
                payload if is_const else row[payload]
                for is_const, payload in resolved
            )
            if key in target:
                out.append(row)
        return out

    index = crel.index(pattern)
    pool.probes += len(rows)
    single = len(pattern) == 1
    if single:
        is_const, payload = resolved[0]
        if is_const:
            bucket = index.get(payload)
            if not bucket:
                return []
            return _emit_bucket(rows, bucket, new_positions, repeats)
        slot = payload
        get = index.get
        if nnew == 1 and not repeats:
            p0 = new_positions[0]
            for row in rows:
                bucket = get(row[slot])
                if bucket:
                    for f in bucket:
                        out.append(row + (f[p0],))
            return out
        for row in rows:
            bucket = get(row[slot])
            if not bucket:
                continue
            for f in bucket:
                if repeats and not all(f[a] == f[b] for a, b in repeats):
                    continue
                out.append(row + tuple(f[p] for p in new_positions))
        return out

    if all(is_const for is_const, _p in resolved):
        key = tuple(payload for _ic, payload in resolved)
        bucket = index.get(key)
        if not bucket:
            return []
        return _emit_bucket(rows, bucket, new_positions, repeats)
    get = index.get
    for row in rows:
        key = tuple(
            payload if is_const else row[payload]
            for is_const, payload in resolved
        )
        bucket = get(key)
        if not bucket:
            continue
        for f in bucket:
            if repeats and not all(f[a] == f[b] for a, b in repeats):
                continue
            out.append(row + tuple(f[p] for p in new_positions))
    return out


def _emit_bucket(
    rows: list, bucket: set, new_positions: tuple, repeats: tuple
) -> list:
    """Extend every row with every bucket member (shared-key case)."""
    ext = [
        tuple(f[p] for p in new_positions)
        for f in bucket
        if not repeats or all(f[a] == f[b] for a, b in repeats)
    ]
    return [row + e for row in rows for e in ext]


def eval_rule_columnar(
    rule: Rule,
    db: "Database",
    pool: InternPool,
    delta_overrides=None,
    delta_at: int | None = None,
    order: tuple[int, ...] | None = None,
) -> set:
    """All facts one rule derives — columnar twin of ``eval_rule``.

    Accepts the same arguments as :func:`~repro.datalog.unify.eval_rule`
    and returns the identical value-space fact set; relations are read
    through their columnar mirrors (built on first touch, maintained
    incrementally afterwards). ``delta_overrides`` relations get a
    mirror of their own, keyed to ``pool``.
    """
    plan = _plan_for(
        rule, order, delta_at if delta_overrides is not None else None
    )
    values = pool.table.values
    rows: list = [()]
    for step in plan.steps:
        tag = step[0]
        if tag == _SCAN:
            if step[2]:  # Δ-restricted occurrence
                rel = delta_overrides.get(step[1])
            else:
                rel = db.relations.get(step[1])
            if rel is None:
                return set()
            crel = rel if isinstance(rel, ColumnarRelation) else (
                rel.columnar(pool)
            )
            rows = _run_scan(step, crel, rows, pool)
            values = pool.table.values
        elif tag == _FILTER:
            rows = step[1](rows, values)
        elif tag == _BIND:
            rows = step[1](rows, values, pool)
            values = pool.table.values
        elif tag == _NEG:
            _t, pred, ground = step
            has_fact = db.has_fact
            rows = [
                r for r in rows if not has_fact(pred, ground(r, values))
            ]
        else:  # _UNRESOLVED
            if rows:
                raise RuntimeError(f"unresolved filters {list(step[1])!r}")
        if not rows:
            return set()

    kind = plan.emit[0]
    if kind == "plain":
        getters = plan.emit[1]
        return {
            tuple(
                payload if is_const else values[r[payload]]
                for is_const, payload in getters
            )
            for r in rows
        }

    _kind, op, agg_slot, group, is_agg = plan.emit
    groups: dict[tuple, list] = {}
    for r in rows:
        key = tuple(
            payload if is_const else values[r[payload]]
            for is_const, payload in group
        )
        groups.setdefault(key, []).append(values[r[agg_slot]])
    out = set()
    for key, vals in groups.items():
        if op == "count":
            result: object = len(vals)
        elif op == "sum":
            result = sum(vals)
        elif op == "min":
            result = min(vals)
        else:  # max
            result = max(vals)
        fact = []
        ki = iter(key)
        for flag in is_agg:
            fact.append(result if flag else next(ki))
        out.add(tuple(fact))
    return out
