"""Counting-based incremental maintenance (Gupta–Mumick–Subrahmanian).

The classic alternative to DRed for **non-recursive** programs: every
derived fact carries its number of distinct derivations. An insertion
adds derivation counts; a deletion subtracts them; a fact disappears
exactly when its count hits zero — no over-delete/re-derive phases and
no second fixpoint.

Counting is exact only when the number of derivations of a fact is
finite and independent of evaluation order, which holds for
non-recursive (stratified, possibly negated) programs; recursive
programs can have infinitely many derivations, which is why the paper's
setting (recursive Datalog) uses DRed. :class:`CountingEngine` refuses
recursive programs so the two engines' domains are explicit, and the
test suite property-checks it against :class:`IncrementalEngine` (DRed)
on their common domain.

Negation is handled per stratum: a negated literal contributes a
*guard*, not a count — rules re-fire for the bindings whose guard
flipped when the negated predicate changes. For simplicity and
correctness we recompute the consumers of a changed negated predicate
within their stratum (the same strategy the DRed engine uses), which is
exact because strata are non-recursive here.

Re-firing is *sticky within one update*: once a rule's contribution has
been recomputed from the current database, its stored per-rule counter
reflects the post-update truth, and the signed incremental propagation
(which diffs against the *pre*-update view) would double-count any
further input change this update — e.g. a deletion that re-enables a
negated subgoal mid-pass refires the consumer through a nested wave,
and the outer deletion wave then reaches the same rule with a positive
Δ it has already absorbed. Such rules are refired again (recompute-and-
diff is idempotent) instead of incrementally adjusted.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from .ast import Program
from .database import Database, Relation
from .depgraph import DependencyGraph
from .incremental import Delta
from .unify import instantiate_head, join_body
from .zset import ZSetDelta

__all__ = ["CountingEngine", "RecursionError_"]


class RecursionError_(ValueError):
    """The counting algorithm requires a non-recursive program."""


@dataclass
class CountingTrace:
    """Per-rule change counts, mirroring MaintenanceTrace's shape."""

    events: list[tuple[str, int, int, int]] = field(default_factory=list)

    def record(self, phase: str, stratum: int, rule: int, n: int) -> None:
        """Log one maintenance step that changed ``n`` counts."""
        if n:
            self.events.append((phase, stratum, rule, n))

    def total_changed(self) -> int:
        """Total count adjustments across all steps."""
        return sum(e[3] for e in self.events)


class CountingEngine:
    """Incremental maintenance via derivation counting.

    Materializes the program once, keeping ``counts[pred][fact]`` — the
    number of distinct rule-instantiation derivations of each derived
    fact. Updates add/subtract counts along the stratification order.
    """

    def __init__(self, program: Program, edb: Database | None = None) -> None:
        self.program = program
        self.depgraph = DependencyGraph(program)
        if self.depgraph.recursive_predicates():
            raise RecursionError_(
                "counting maintenance requires a non-recursive program; "
                f"recursive: {sorted(self.depgraph.recursive_predicates())}"
            )
        for rule in program.proper_rules:
            if rule.has_aggregate:
                raise RecursionError_(
                    "counting maintenance does not support aggregate "
                    f"rules: {rule!r}"
                )
        self.strata = self.depgraph.stratify()
        self.edb_predicates = program.edb_predicates()
        self.db = edb.copy() if edb is not None else Database()
        self.counts: dict[str, Counter] = {}
        self._refired: set[int] = set()
        self._seed_program_facts()
        self._materialize()

    # ------------------------------------------------------------------
    def _seed_program_facts(self) -> None:
        for fact_rule in self.program.facts:
            self.db.add_fact(
                fact_rule.head.predicate,
                tuple(t.value for t in fact_rule.head.terms),  # type: ignore[union-attr]
            )
        for rule in self.program.rules:
            atoms = [rule.head] + [
                l.atom for l in rule.body if l.atom is not None
            ]
            for a in atoms:
                self.db.relation(a.predicate, a.arity)

    def _stratum_rules(self, stratum: set[str]):
        return [
            (ri, r)
            for ri, r in enumerate(self.program.proper_rules)
            if r.head.predicate in stratum
        ]

    def _materialize(self) -> None:
        self._rule_contrib: dict[int, Counter] = {}
        for stratum in self.strata:
            for ri, rule in self._stratum_rules(set(stratum)):
                head = rule.head.predicate
                counter = self.counts.setdefault(head, Counter())
                contrib = Counter(
                    instantiate_head(rule.head, s)
                    for s in join_body(rule.body, self.db)
                )
                self._rule_contrib[ri] = contrib
                for fact, k in contrib.items():
                    counter[fact] += k
                for fact in contrib:
                    self.db.add_fact(head, fact)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, set[tuple]]:
        """Current materialized facts (for oracle comparisons)."""
        return self.db.as_dict()

    def count_of(self, predicate: str, fact: tuple) -> int:
        """Number of derivations of a derived fact (0 if absent)."""
        return self.counts.get(predicate, Counter()).get(fact, 0)

    def apply(self, delta: "Delta | ZSetDelta") -> CountingTrace:
        """Apply an EDB update by propagating derivation-count deltas.

        Accepts either a set-semantics :class:`Delta` or a weighted
        :class:`ZSetDelta` (positive weights insert, negative delete).
        """
        if isinstance(delta, ZSetDelta):
            delta = delta.to_delta()
        for pred in delta.touched_predicates():
            if pred not in self.edb_predicates:
                raise ValueError(
                    f"cannot update derived predicate {pred!r}"
                )
        trace = CountingTrace()
        # rules whose contribution was recomputed from the current
        # database this update — see the sticky-refire module note
        self._refired: set[int] = set()
        if delta.is_empty:
            return trace

        # Counting has no re-derive safety net, so every join must see
        # an exact database state. Both directions are applied to the
        # EDB up front and swept down the strata together as one
        # weighted wave — interleaving separate insertion and deletion
        # passes is unsound, because the first pass's consequences at a
        # high stratum would race the second pass's still-unprocessed
        # changes at a low one.
        wave = ZSetDelta()
        for pred, facts in delta.deletions.items():
            rel = self.db.relations.get(pred)
            if rel is None:
                continue
            for f in facts:
                if rel.discard(f):
                    wave.delete(pred, f)
        for pred, facts in delta.insertions.items():
            if not facts:  # normalization can leave empty sets behind
                continue
            rel = self.db.relation(pred, len(next(iter(facts))))
            for f in facts:
                if rel.add(f):
                    wave.insert(pred, f)
        if not wave.is_empty:
            self._sweep(wave, trace)
        return trace

    def _sweep(self, wave: ZSetDelta, trace: CountingTrace) -> None:
        """Propagate one weighted wave of fact changes down all strata.

        Per stratum, each rule sees the accumulated wave from the EDB
        and every lower stratum and is handled by exactly one of:

        * **refire** (recompute-and-diff, always exact) when a negated
          input changed, when inputs changed in *both* directions (the
          signed propagation's two-view trick assumes a single
          direction), or when the rule was already refired this update
          (its stored contribution reflects the current database, so an
          incremental diff against the pre-update view would
          double-count — the sticky barrier from the module docstring);
        * **signed propagation** otherwise, joining deletions against
          the pre-update view and insertions against the current one.

        Head changes join the wave only after the whole stratum is
        processed, so every rule in a stratum sees the same input state.
        """
        for si, stratum in enumerate(self.strata):
            rules = self._stratum_rules(set(stratum))
            if not rules:
                continue
            minus_sets = wave.negative()
            plus_sets = wave.positive()
            new_plus: dict[str, set[tuple]] = {}
            new_minus: dict[str, set[tuple]] = {}
            for ri, rule in rules:
                head = rule.head.predicate
                counter = self.counts.setdefault(head, Counter())
                neg_changed = any(
                    lit.negated
                    and lit.atom is not None
                    and wave.touches(lit.atom.predicate)
                    for lit in rule.body
                )
                in_minus = any(
                    not lit.negated
                    and lit.atom is not None
                    and lit.atom.predicate in minus_sets
                    for lit in rule.body
                )
                in_plus = any(
                    not lit.negated
                    and lit.atom is not None
                    and lit.atom.predicate in plus_sets
                    for lit in rule.body
                )
                if neg_changed or (in_minus and in_plus) or (
                    ri in self._refired and (in_minus or in_plus)
                ):
                    n = self._refire_rule(ri, rule, counter, new_plus,
                                          new_minus)
                    self._refired.add(ri)
                    trace.record("recount", si, ri, n)
                elif in_minus:
                    n = self._propagate_signed(
                        ri, rule, counter, minus_sets, sign=-1,
                        sink_plus=new_plus, sink_minus=new_minus,
                    )
                    trace.record("count", si, ri, n)
                elif in_plus:
                    n = self._propagate_signed(
                        ri, rule, counter, plus_sets, sign=+1,
                        sink_plus=new_plus, sink_minus=new_minus,
                    )
                    trace.record("count", si, ri, n)
            for p, s in new_plus.items():
                for f in s:
                    wave.insert(p, f)
            for p, s in new_minus.items():
                for f in s:
                    wave.delete(p, f)

    # ------------------------------------------------------------------
    def _old_view(self, minus: dict[str, set[tuple]]) -> Database:
        """Database view with deleted facts re-added (pre-update state
        for predicates already processed)."""
        if not any(minus.values()):
            return self.db
        view = Database(dict(self.db.relations))
        for pred, gone in minus.items():
            if not gone:
                continue
            arity = len(next(iter(gone)))
            merged = Relation(pred, arity)
            existing = self.db.relations.get(pred)
            if existing is not None:
                for f in existing:
                    merged.add(f)
            for f in gone:
                merged.add(f)
            view.relations[pred] = merged
        return view

    def _propagate_signed(
        self,
        ri: int,
        rule,
        counter: Counter,
        delta_sets: dict[str, set[tuple]],
        sign: int,
        sink_plus: dict[str, set[tuple]],
        sink_minus: dict[str, set[tuple]],
    ) -> int:
        """Count derivations involving at least one Δ-fact, with the
        standard inclusion–exclusion ordering trick: position ``pos``
        reads Δ, positions < pos read the state *without* Δ applied for
        this sign, positions > pos read the state *with* it. The
        canonical two-view rule implements it: for deletions the join
        runs against the old view, for insertions against the new one,
        each occurrence restricted to Δ once, positions before the
        Δ-occurrence excluded from Δ via set subtraction.

        This is exact only while the rule's stored contribution still
        reflects the pre-wave state — a rule that was refired mid-update
        (negation flip) must never come back through here in the same
        update; ``_one_pass`` enforces that barrier via the sticky-
        refire set.
        """
        head = rule.head.predicate
        changed = 0
        base_db = self._old_view(delta_sets) if sign < 0 else self.db
        for pos, lit in enumerate(rule.body):
            if lit.atom is None or lit.negated:
                continue
            pred = lit.atom.predicate
            if pred not in delta_sets or not delta_sets[pred]:
                continue
            over = Relation(pred, lit.atom.arity)
            for f in delta_sets[pred]:
                over.add(f)
            # exclude Δ from earlier occurrences of the same predicate:
            # build a view where occurrences < pos see base minus Δ
            derived = []
            for subst in join_body(
                rule.body,
                base_db,
                delta_overrides={pred: over},
                delta_at=pos,
            ):
                # skip substitutions whose earlier occurrences (of any
                # Δ-touched predicate, not just this one) also matched
                # a Δ fact — those derivations are counted exactly once,
                # at the position of their first Δ occurrence
                double = False
                for p2 in range(pos):
                    lit2 = rule.body[p2]
                    if (
                        lit2.atom is not None
                        and not lit2.negated
                        and lit2.atom.predicate in delta_sets
                    ):
                        fact2 = instantiate_head(lit2.atom, subst)
                        if fact2 in delta_sets[lit2.atom.predicate]:
                            double = True
                            break
                if not double:
                    derived.append(instantiate_head(rule.head, subst))
            contrib = self._rule_contrib.setdefault(ri, Counter())
            for fact in derived:
                contrib[fact] += sign
                if contrib[fact] <= 0:
                    del contrib[fact]
                old = counter[fact]
                counter[fact] = old + sign
                changed += 1
                if old == 0 and sign > 0:
                    if self.db.add_fact(head, fact):
                        sink_plus.setdefault(head, set()).add(fact)
                elif old + sign == 0 and sign < 0:
                    del counter[fact]
                    rel = self.db.relations.get(head)
                    if rel is not None and rel.discard(fact):
                        sink_minus.setdefault(head, set()).add(fact)
        return changed

    def _refire_rule(
        self,
        ri: int,
        rule,
        counter: Counter,
        sink_plus: dict[str, set[tuple]],
        sink_minus: dict[str, set[tuple]],
    ) -> int:
        """A negated input changed: recompute this rule's contribution.

        Exact for non-recursive rules: re-run the join, diff the
        multiset of derivations against the rule's previous
        contribution, and adjust counts.
        """
        head = rule.head.predicate
        new_contrib = Counter(
            instantiate_head(rule.head, s)
            for s in join_body(rule.body, self.db)
        )
        old_contrib = self._rule_contrib.get(ri, Counter())
        changed = 0
        for fact in set(new_contrib) | set(old_contrib):
            diff = new_contrib[fact] - old_contrib[fact]
            if diff == 0:
                continue
            old = counter[fact]
            counter[fact] = old + diff
            changed += abs(diff)
            if old == 0 and counter[fact] > 0:
                if self.db.add_fact(head, fact):
                    sink_plus.setdefault(head, set()).add(fact)
            elif counter[fact] <= 0:
                del counter[fact]
                rel = self.db.relations.get(head)
                if rel is not None and rel.discard(fact):
                    sink_minus.setdefault(head, set()).add(fact)
        self._rule_contrib[ri] = new_contrib
        return changed

