"""Predicate dependency graph, SCCs, and stratification.

The *predicate dependency graph* has one node per predicate and an edge
``p → q`` whenever ``p`` appears in the body of a rule with head ``q``
(marked negative when the occurrence is negated). Strongly connected
components (Tarjan, iterative) identify mutually recursive predicate
groups; a program is *stratifiable* iff no negative edge lies inside an
SCC. Strata are the SCCs in topological order — the evaluation and
incremental-maintenance engines process them bottom-up, and the DAG
compiler unrolls each recursive SCC's fixpoint iterations into levels
of the computation DAG.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from .ast import Program

__all__ = ["DependencyGraph", "StratificationError", "condensation_sccs"]


class StratificationError(ValueError):
    """The program negates a predicate inside its own recursive clique."""


def condensation_sccs(
    nodes: list[str], edges: dict[str, set[str]]
) -> list[list[str]]:
    """Strongly connected components in *dependency order*: if any edge
    runs from component A to component B, A appears before B.

    Iterative Tarjan emits components sinks-first (a component completes
    before anything that reaches it), so the emission order is reversed
    before returning.
    """
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        work: list[tuple[str, list[str], int]] = [
            (root, sorted(edges.get(root, ())), 0)
        ]
        while work:
            v, children, ci = work.pop()
            if ci == 0:
                index[v] = low[v] = counter
                counter += 1
                stack.append(v)
                on_stack.add(v)
            advanced = False
            while ci < len(children):
                w = children[ci]
                ci += 1
                if w not in index:
                    work.append((v, children, ci))
                    work.append((w, sorted(edges.get(w, ())), 0))
                    advanced = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            if low[v] == index[v]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == v:
                        break
                sccs.append(sorted(comp))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
    sccs.reverse()
    return sccs


@dataclass
class DependencyGraph:
    """Dependency structure of a :class:`~repro.datalog.ast.Program`."""

    program: Program
    #: body-pred → set of head-preds it feeds (positive or negative)
    edges: dict[str, set[str]] = field(default_factory=dict)
    #: (body-pred, head-pred) pairs where the body occurrence is negated
    negative_edges: set[tuple[str, str]] = field(default_factory=set)
    #: negative edge → why it stratifies ("negation" | "aggregation");
    #: negation wins when one edge has both kinds of occurrence
    negative_edge_kinds: dict[tuple[str, str], str] = field(
        default_factory=dict
    )

    def __post_init__(self) -> None:
        deps: dict[str, set[str]] = defaultdict(set)
        for rule in self.program.proper_rules:
            for pred, negated in rule.body_predicates():
                edge = (pred, rule.head.predicate)
                deps[pred].add(rule.head.predicate)
                # aggregation stratifies like negation: the aggregated
                # body must be fully materialized before the rule runs
                if negated:
                    self.negative_edges.add(edge)
                    self.negative_edge_kinds[edge] = "negation"
                elif rule.has_aggregate:
                    self.negative_edges.add(edge)
                    self.negative_edge_kinds.setdefault(edge, "aggregation")
        self.edges = dict(deps)

    # ------------------------------------------------------------------
    def predicates(self) -> list[str]:
        """All predicates, sorted (the SCC computation's node set)."""
        return sorted(self.program.predicates())

    def sccs(self) -> list[list[str]]:
        """SCCs in dependency order (a predicate's inputs come first)."""
        return condensation_sccs(self.predicates(), self.edges)

    def recursive_predicates(self) -> set[str]:
        """Predicates in a multi-node SCC or with a self-loop."""
        out: set[str] = set()
        for comp in self.sccs():
            if len(comp) > 1:
                out.update(comp)
            else:
                p = comp[0]
                if p in self.edges.get(p, ()):  # pragma: no cover - guarded
                    out.add(p)
        for p, targets in self.edges.items():
            if p in targets:
                out.add(p)
        return out

    def _witness_path(
        self, start: str, goal: str, comp: set[str]
    ) -> list[str]:
        """Shortest dependency path ``start → … → goal`` within one SCC
        (BFS over positive-or-negative edges, restricted to ``comp``)."""
        if start == goal:
            return [start]
        parent: dict[str, str | None] = {start: None}
        frontier = [start]
        while frontier:
            nxt: list[str] = []
            for u in frontier:
                for w in sorted(self.edges.get(u, ())):
                    if w not in comp or w in parent:
                        continue
                    parent[w] = u
                    if w == goal:
                        path = [w]
                        while parent[path[-1]] is not None:
                            path.append(parent[path[-1]])  # type: ignore[arg-type]
                        path.reverse()
                        return path
                    nxt.append(w)
            frontier = nxt
        return [start, goal]  # unreachable: start/goal share an SCC

    def negation_cycles(self) -> list[tuple[list[str], str]]:
        """Every stratification violation with a witness cycle.

        For each negative edge ``src → dst`` inside one SCC, returns
        ``(cycle, kind)`` where ``cycle`` is a predicate path
        ``[dst, …, src, dst]`` — the positive dependency chain from the
        rule's head back to the offending body predicate, closed by the
        negative edge — and ``kind`` is ``"negation"`` or
        ``"aggregation"``. Empty iff the program stratifies. Computed
        on demand so :meth:`stratify`'s happy path stays cheap.
        """
        comps = self.sccs()
        comp_of: dict[str, int] = {}
        for i, comp in enumerate(comps):
            for p in comp:
                comp_of[p] = i
        out: list[tuple[list[str], str]] = []
        for src, dst in sorted(self.negative_edges):
            if comp_of.get(src) != comp_of.get(dst):
                continue
            comp = set(comps[comp_of[src]])
            path = self._witness_path(dst, src, comp)
            out.append((path + [dst], self.negative_edge_kinds[(src, dst)]))
        return out

    def stratify(self) -> list[list[str]]:
        """Strata (SCCs in dependency order); raises on negation in a cycle.

        Each stratum is one SCC. All predicates an SCC depends on appear
        in strictly earlier strata, so negated bodies are fully
        materialized before their consumers run — the standard
        stratified-negation semantics.
        """
        comps = self.sccs()
        comp_of: dict[str, int] = {}
        for i, comp in enumerate(comps):
            for p in comp:
                comp_of[p] = i
        for src, dst in self.negative_edges:
            if comp_of.get(src) == comp_of.get(dst):
                cycle, kind = self.negation_cycles()[0]
                raise StratificationError(
                    f"{kind} of {cycle[-2]!r} inside its own recursive "
                    f"component {comps[comp_of[cycle[-2]]]!r}: "
                    "dependency cycle "
                    + " -> ".join(map(repr, cycle))
                )
        return comps

    def is_stratifiable(self) -> bool:
        """Whether :meth:`stratify` succeeds."""
        try:
            self.stratify()
            return True
        except StratificationError:
            return False
