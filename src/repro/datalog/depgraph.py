"""Predicate dependency graph, SCCs, and stratification.

The *predicate dependency graph* has one node per predicate and an edge
``p → q`` whenever ``p`` appears in the body of a rule with head ``q``
(marked negative when the occurrence is negated). Strongly connected
components (Tarjan, iterative) identify mutually recursive predicate
groups; a program is *stratifiable* iff no negative edge lies inside an
SCC. Strata are the SCCs in topological order — the evaluation and
incremental-maintenance engines process them bottom-up, and the DAG
compiler unrolls each recursive SCC's fixpoint iterations into levels
of the computation DAG.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from .ast import Program

__all__ = ["DependencyGraph", "StratificationError", "condensation_sccs"]


class StratificationError(ValueError):
    """The program negates a predicate inside its own recursive clique."""


def condensation_sccs(
    nodes: list[str], edges: dict[str, set[str]]
) -> list[list[str]]:
    """Strongly connected components in *dependency order*: if any edge
    runs from component A to component B, A appears before B.

    Iterative Tarjan emits components sinks-first (a component completes
    before anything that reaches it), so the emission order is reversed
    before returning.
    """
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    sccs: list[list[str]] = []
    counter = 0

    for root in nodes:
        if root in index:
            continue
        work: list[tuple[str, list[str], int]] = [
            (root, sorted(edges.get(root, ())), 0)
        ]
        while work:
            v, children, ci = work.pop()
            if ci == 0:
                index[v] = low[v] = counter
                counter += 1
                stack.append(v)
                on_stack.add(v)
            advanced = False
            while ci < len(children):
                w = children[ci]
                ci += 1
                if w not in index:
                    work.append((v, children, ci))
                    work.append((w, sorted(edges.get(w, ())), 0))
                    advanced = True
                    break
                if w in on_stack:
                    low[v] = min(low[v], index[w])
            if advanced:
                continue
            if low[v] == index[v]:
                comp = []
                while True:
                    w = stack.pop()
                    on_stack.discard(w)
                    comp.append(w)
                    if w == v:
                        break
                sccs.append(sorted(comp))
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[v])
    sccs.reverse()
    return sccs


@dataclass
class DependencyGraph:
    """Dependency structure of a :class:`~repro.datalog.ast.Program`."""

    program: Program
    #: body-pred → set of head-preds it feeds (positive or negative)
    edges: dict[str, set[str]] = field(default_factory=dict)
    #: (body-pred, head-pred) pairs where the body occurrence is negated
    negative_edges: set[tuple[str, str]] = field(default_factory=set)

    def __post_init__(self) -> None:
        deps: dict[str, set[str]] = defaultdict(set)
        for rule in self.program.proper_rules:
            for pred, negated in rule.body_predicates():
                deps[pred].add(rule.head.predicate)
                # aggregation stratifies like negation: the aggregated
                # body must be fully materialized before the rule runs
                if negated or rule.has_aggregate:
                    self.negative_edges.add((pred, rule.head.predicate))
        self.edges = dict(deps)

    # ------------------------------------------------------------------
    def predicates(self) -> list[str]:
        """All predicates, sorted (the SCC computation's node set)."""
        return sorted(self.program.predicates())

    def sccs(self) -> list[list[str]]:
        """SCCs in dependency order (a predicate's inputs come first)."""
        return condensation_sccs(self.predicates(), self.edges)

    def recursive_predicates(self) -> set[str]:
        """Predicates in a multi-node SCC or with a self-loop."""
        out: set[str] = set()
        for comp in self.sccs():
            if len(comp) > 1:
                out.update(comp)
            else:
                p = comp[0]
                if p in self.edges.get(p, ()):  # pragma: no cover - guarded
                    out.add(p)
        for p, targets in self.edges.items():
            if p in targets:
                out.add(p)
        return out

    def stratify(self) -> list[list[str]]:
        """Strata (SCCs in dependency order); raises on negation in a cycle.

        Each stratum is one SCC. All predicates an SCC depends on appear
        in strictly earlier strata, so negated bodies are fully
        materialized before their consumers run — the standard
        stratified-negation semantics.
        """
        comps = self.sccs()
        comp_of: dict[str, int] = {}
        for i, comp in enumerate(comps):
            for p in comp:
                comp_of[p] = i
        for src, dst in self.negative_edges:
            if comp_of.get(src) == comp_of.get(dst):
                raise StratificationError(
                    f"negation of {src!r} inside its own recursive "
                    f"component {comps[comp_of[src]]!r}"
                )
        return comps

    def is_stratifiable(self) -> bool:
        """Whether :meth:`stratify` succeeds."""
        try:
            self.stratify()
            return True
        except StratificationError:
            return False
