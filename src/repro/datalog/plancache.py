"""Round-over-round plan caching for the serving hot path.

The maintenance loop in :mod:`repro.runtime.service` is a sequence of
rounds over one program: round ``N+1``'s *old* materialization is
exactly round ``N``'s *new* one. Cold compilation ignores this and
pays two from-scratch semi-naive evaluations plus a full
:class:`~repro.datalog.units.ExecutionPlan` rebuild per round. This
module caches everything that survives a round:

* :class:`CompiledProgramCache` — the front door. ``compile()``
  reuses the committed previous round's new side (database, evaluation
  trace, cumulative predicate states) as this round's old side,
  skipping one of the two evaluations; ``plan()`` patches the prior
  round's bound plan in place when the DAG structure is unchanged,
  instead of rebuilding closures and wiring; ``commit()`` promotes the
  staged round after the service has verified it.
* :class:`RelationIndexCache` — a value-addressed store of
  :class:`~repro.datalog.database.Relation` objects keyed by
  ``(predicate, fact set)``. Joins build hash indexes lazily on these
  relations; because the same value is served for the same fact set,
  the indexes built in round ``N`` are probed again in round ``N+1``,
  and a changed relation's successor is *derived* from its predecessor
  (clone indexes once, apply the delta incrementally) rather than
  re-indexed from scratch.

Consistency model
-----------------
Cache entries are immutable by convention once published: the only
mutation a published relation sees is lazy index growth, which is
idempotent and invisible to readers. ``compile()`` stages its results;
nothing the staged round produced becomes the committed baseline until
``commit()``. A failed round therefore needs no undo — the service
simply never commits it, calls :meth:`CompiledProgramCache.rollback`,
and the retry recompiles from the untouched committed state,
deterministically reproducing the same staged round.

Invalidation
------------
The cache is keyed to one program (by structural fingerprint) and one
EDB schema (predicate → arity). A rule-set edit or a schema change
flushes skeletons, plans, relations, and the committed baseline, and
bumps the ``invalidations`` counter; the next round compiles cold.

All hit/miss/invalidation counters are exported through
:class:`repro.obs.metrics.MetricsRegistry` and annotated onto the
current tracing span when a :class:`repro.obs.trace.TraceSink` is
active.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..obs.metrics import MetricsRegistry
from ..obs.trace import NULL_SINK, TraceSink
from .ast import Program
from .columnar import ColumnarZSet, InternPool
from .compiler import (
    CompiledUpdate,
    _cumulative_states,
    _usable_analysis,
    build_compiled_update,
    live_edb_predicates,
    with_program_schema,
)
from .database import Database, Relation
from .incremental import Delta
from .seminaive import EvaluationTrace, seminaive_evaluate
from .units import ExecutionPlan, PlanSkeleton
from .zset import ZSetDelta, apply_zdelta, effective_zdelta

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..verify.program import ProgramAnalysis

__all__ = ["CompiledProgramCache", "RelationIndexCache"]


class RelationIndexCache:
    """Value-addressed, LRU-bounded store of indexed relations.

    Keyed by ``(predicate, frozenset-of-facts)``, so a lookup for a
    fact set that was served before returns the *same* relation object
    — with whatever hash indexes joins have lazily built on it since.
    ``get(..., derive_from=...)`` turns a changed relation into its
    successor by cloning the predecessor's indexes and applying the
    delta through :meth:`Relation.add`/:meth:`Relation.discard`, which
    maintain every index in O(|delta|).

    Under columnar storage each cached relation also carries its
    interned columnar mirror: derivation clones the mirror (rows and
    columnar indexes) along with the row indexes, and the weighted
    ``delta_ops`` maintain both through :meth:`Relation.add`/
    :meth:`Relation.discard` — so the batch joins of round ``N+1``
    probe the columnar indexes round ``N`` built, updated in
    O(|delta|).

    Published relations must never be mutated by callers (lazy index
    growth excepted); derivation always works on a private clone and
    publishes it atomically under the cache lock. Because entries are
    immutable, a failed round cannot corrupt the store — entries staged
    for it are simply superfluous and age out of the LRU.
    """

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise ValueError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple[str, frozenset], Relation] = (
            OrderedDict()
        )
        self._lock = threading.Lock()
        self.hits = 0
        self.derives = 0
        self.weighted_derives = 0
        self.builds = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(
        self,
        pred: str,
        arity: int,
        facts: frozenset,
        derive_from: frozenset | None = None,
        delta_ops: "tuple[tuple[tuple, int], ...] | None" = None,
    ) -> Relation:
        """The cached relation holding exactly ``facts`` for ``pred``.

        ``derive_from`` names the fact set this value evolved from; if
        that predecessor is cached, the result inherits its indexes
        incrementally instead of starting unindexed. ``delta_ops`` is
        the exact weighted update from ``derive_from`` to ``facts`` as
        ``(fact, weight)`` pairs; when supplied, derivation applies
        those ops directly — O(|delta|) instead of the O(|relation|)
        two-sided set diff — so a round whose insert/retract pairs
        cancelled upstream pays for exactly the operations that
        survived.
        """
        key = (pred, facts)
        with self._lock:
            rel = self._entries.get(key)
            if rel is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return rel
            base = None
            if derive_from is not None and derive_from != facts:
                base = self._entries.get((pred, derive_from))
            if base is not None:
                rel = base.copy_indexed()
                if delta_ops is not None:
                    for t, w in delta_ops:
                        if w > 0:
                            rel.add(t)
                        else:
                            rel.discard(t)
                    self.weighted_derives += 1
                else:
                    for t in derive_from - facts:  # type: ignore[operator]
                        rel.discard(t)
                    for t in facts - derive_from:  # type: ignore[operator]
                        rel.add(t)
                self.derives += 1
            else:
                rel = Relation(pred, arity)
                for t in facts:
                    rel.add(t)
                self.builds += 1
            self._entries[key] = rel
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)
                self.evictions += 1
            return rel

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict[str, int]:
        return {
            "entries": len(self._entries),
            "hits": self.hits,
            "derives": self.derives,
            "weighted_derives": self.weighted_derives,
            "builds": self.builds,
            "evictions": self.evictions,
        }


@dataclass
class _Side:
    """One committed (or staged) side of a round."""

    edb: Database
    db: Database
    ev: EvaluationTrace
    states: dict[tuple, frozenset]
    #: rule indices the static analyzer pruned for this side — the
    #: baseline is only reusable by a round pruning the same set
    pruned: frozenset[int] = field(default_factory=frozenset)


def _edb_schema(edb: Database) -> frozenset:
    return frozenset((p, rel.arity) for p, rel in edb.relations.items())


def _edb_equal(a: Database, b: Database) -> bool:
    if a is b:
        return True
    if a.relations.keys() != b.relations.keys():
        return False
    return all(
        set(rel) == set(b.relations[p]) for p, rel in a.relations.items()
    )


class CompiledProgramCache:
    """Compile-once, patch-per-round cache over one rule program.

    The service's per-round protocol::

        cu = cache.compile(program, edb_old, delta)   # stage
        plan = cache.plan(cu)                         # patch or bind
        ...execute + verify...
        cache.commit(cu)     # success: staged side becomes baseline
        cache.rollback()     # failure: staged side is discarded

    ``compile`` reuses the committed baseline as the old side when
    ``edb_old`` matches it (a *hit* — one semi-naive evaluation saved);
    otherwise it evaluates both sides cold (a *miss*). ``plan``
    re-stamps the cached bound plan in place whenever the new round's
    DAG structure (``node_keys``) matches a cached skeleton; task join
    inputs are served from the shared :class:`RelationIndexCache` so
    their hash indexes survive across rounds.

    A program whose structural fingerprint differs from the cached one,
    or an ``edb_old`` whose schema (predicate → arity) differs from the
    committed baseline's, invalidates everything.
    """

    def __init__(
        self,
        program: Program,
        metrics: MetricsRegistry | None = None,
        sink: TraceSink = NULL_SINK,
        max_plans: int = 8,
        relation_cache_size: int = 256,
        analysis: "ProgramAnalysis | None" = None,
        storage: str = "columnar",
    ) -> None:
        if storage not in ("row", "columnar"):
            raise ValueError(
                f"unknown storage {storage!r}; choose 'row' or 'columnar'"
            )
        self.storage = storage
        #: shared intern pool under columnar storage (None for row);
        #: survives invalidation — interned values stay valid across
        #: program edits, only the relations keyed on them are dropped
        self.pool: InternPool | None = (
            InternPool() if storage == "columnar" else None
        )
        self._program = program
        self._fingerprint = repr(program)
        self._analysis = _usable_analysis(program, analysis)
        #: pruned-rule set → the program actually evaluated; memoized so
        #: steady-state pruned rounds reuse one Program object (and its
        #: cached predicate sets / stratification downstream)
        self._run_programs: dict[frozenset, Program] = {
            frozenset(): program
        }
        self._schema: frozenset | None = None
        self._metrics = metrics
        self._sink = sink
        self._max_plans = max_plans
        self.relations = RelationIndexCache(relation_cache_size)
        self._plans: OrderedDict[
            tuple, tuple[PlanSkeleton, ExecutionPlan]
        ] = OrderedDict()
        self._prev: _Side | None = None
        self._staged: _Side | None = None
        self._staged_cu_id: int | None = None
        self._staged_states_old: dict[tuple, frozenset] | None = None
        self._staged_zdelta: ZSetDelta | None = None
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.plan_patches = 0
        self.plan_binds = 0
        self.rollbacks = 0
        #: submitted delta operations that cancelled against the EDB
        #: (insert-of-present, delete-of-absent, coalesced pairs) and
        #: therefore skipped all downstream compile/index work
        self.cancelled_ops = 0
        #: weighted ops interned into the columnar delta (0 for row)
        self.interned_ops = 0

    # ------------------------------------------------------------------
    def _count(self, name: str, n: int = 1) -> None:
        if self._metrics is not None:
            self._metrics.counter(f"plancache.{name}").inc(n)
        if self._sink.enabled:
            self._sink.add_to_current(f"plancache.{name}", n)

    def _invalidate(self) -> None:
        self._plans.clear()
        self.relations.clear()
        self._prev = None
        self._staged = None
        self._staged_cu_id = None
        self._staged_states_old = None
        self._staged_zdelta = None
        self._run_programs = {frozenset(): self._program}
        self.invalidations += 1
        self._count("invalidations")

    def _check_validity(self, program: Program, edb_old: Database) -> None:
        if program is not self._program:
            fingerprint = repr(program)
            if fingerprint != self._fingerprint:
                self._invalidate()
                self._fingerprint = fingerprint
                self._schema = None
                # the analysis was computed for the old rule set
                self._analysis = None
                self._run_programs = {frozenset(): program}
            self._program = program
        schema = _edb_schema(edb_old)
        if self._schema is not None and schema != self._schema:
            self._invalidate()
        self._schema = schema

    def _shared_relations(
        self,
        edb_new: Database,
        edb_old: Database,
        zdelta: ZSetDelta | None = None,
    ) -> dict[str, Relation]:
        """Indexed join inputs for the new side's evaluation.

        Only predicates the evaluation never writes — EDB predicates
        that are not fact-rule heads — may be substituted (see
        :func:`~repro.datalog.seminaive.seminaive_evaluate`). With
        ``zdelta`` (the effective ``edb_old → edb_new`` update), changed
        relations derive from their predecessors by applying exactly the
        surviving weighted ops.
        """
        writable = {r.head.predicate for r in self._program.rules}
        shared: dict[str, Relation] = {}
        for pred, rel in edb_new.relations.items():
            if pred in writable:
                continue
            facts = frozenset(rel)
            old_rel = edb_old.relations.get(pred)
            derive_from = (
                frozenset(old_rel) if old_rel is not None else None
            )
            ops = (
                tuple(zdelta.ops_for(pred))
                if zdelta is not None and zdelta.touches(pred)
                else None
            )
            shared[pred] = self.relations.get(
                pred, rel.arity, facts, derive_from=derive_from,
                delta_ops=ops,
            )
        return shared

    # ------------------------------------------------------------------
    def compile(
        self,
        program: Program,
        edb_old: Database,
        delta: Delta,
        work_per_derivation: float = 1e-3,
        name: str = "datalog-update",
    ) -> CompiledUpdate:
        """Compile one round, reusing the committed baseline when valid.

        Drop-in for :func:`repro.datalog.compiler.compile_update`; the
        result is *staged* — call :meth:`commit` once the round is
        verified, or :meth:`rollback` if it failed.
        """
        for pred in delta.touched_predicates():
            if pred in program.idb_predicates():
                raise ValueError(
                    f"update targets derived predicate {pred!r}"
                )
        self._check_validity(program, edb_old)

        # clamp to effective weights: redundant and mutually-cancelling
        # ops vanish here, so they never reach evaluation, index
        # derivation, pruning, or the plan signature
        zdelta = effective_zdelta(edb_old, delta)
        submitted = sum(
            len(s) for s in delta.insertions.values()
        ) + sum(len(s) for s in delta.deletions.values())
        cancelled = submitted - zdelta.op_count()
        if cancelled:
            self.cancelled_ops += cancelled
            self._count("cancelled_ops", cancelled)
        edb_new = apply_zdelta(edb_old, zdelta)
        touched = zdelta.touched_predicates()
        if self.pool is not None and not zdelta.is_empty:
            # intern the surviving weighted ops up front: any constant
            # the round introduces gets its id (and per-predicate row
            # memo) before evaluation or index derivation touches it
            czset = ColumnarZSet.from_zdelta(self.pool, zdelta)
            ops = czset.op_count()
            self.interned_ops += ops
            self._count("interned_ops", ops)

        # static-analysis pruning: drop rules that provably cannot fire
        # against either EDB snapshot; augment both snapshots with the
        # full program's schema so the materializations (and the
        # committed baseline's schema) stay byte-identical to the
        # unpruned path
        dead: frozenset[int] = frozenset()
        if self._analysis is not None:
            dead = self._analysis.prunable_rules(
                live_edb_predicates(edb_old, edb_new)
            )
        run_program = self._run_programs.get(dead)
        if run_program is None:
            run_program = Program(
                tuple(
                    r
                    for i, r in enumerate(self._program.rules)
                    if i not in dead
                )
            )
            self._run_programs[dead] = run_program
        if dead:
            edb_old = with_program_schema(edb_old, self._program)
            edb_new = with_program_schema(edb_new, self._program)
            touched = touched & run_program.edb_predicates()

        prev = self._prev
        if (
            prev is not None
            and prev.pruned == dead
            and _edb_equal(prev.edb, edb_old)
        ):
            self.hits += 1
            self._count("hits")
            db_old, ev_old, states_old = prev.db, prev.ev, prev.states
            edb_old = prev.edb
        else:
            self.misses += 1
            self._count("misses")
            db_old, ev_old = seminaive_evaluate(
                run_program,
                edb_old,
                record=True,
                shared_relations=self._shared_relations(edb_old, edb_old),
                pool=self.pool,
            )
            states_old = _cumulative_states(run_program, ev_old, edb_old)

        db_new, ev_new = seminaive_evaluate(
            run_program,
            edb_new,
            record=True,
            shared_relations=self._shared_relations(
                edb_new, edb_old, zdelta
            ),
            pool=self.pool,
        )
        states_new = _cumulative_states(run_program, ev_new, edb_new)

        cu = build_compiled_update(
            run_program,
            edb_old,
            edb_new,
            db_old,
            db_new,
            ev_old,
            ev_new,
            touched=touched,
            work_per_derivation=work_per_derivation,
            name=name,
            states_old=states_old,
            states_new=states_new,
        )
        self._staged = _Side(edb_new, db_new, ev_new, states_new, dead)
        self._staged_cu_id = id(cu)
        self._staged_states_old = states_old
        self._staged_zdelta = zdelta
        return cu

    def plan(self, cu: CompiledUpdate) -> ExecutionPlan:
        """A bound plan for ``cu`` — patched in place when possible.

        The returned plan is owned by the cache and re-stamped on the
        next call; execute it before compiling the next round.
        """
        staged = self._staged_cu_id == id(cu)
        states_old = self._staged_states_old if staged else None
        zdelta = self._staged_zdelta if staged else None
        # the fingerprint disambiguates structurally different pruned
        # programs whose node keys happen to coincide (rule indices
        # shift when rules are pruned)
        fp = (
            self._fingerprint
            if cu.program is self._program
            else repr(cu.program)
        )
        sig = (fp, tuple(cu.node_keys))
        cached = self._plans.get(sig)
        if cached is not None:
            skeleton, plan = cached
            skeleton.patch(plan, cu, states_old, zdelta=zdelta)
            self._plans.move_to_end(sig)
            self.plan_patches += 1
            self._count("plan_patches")
            return plan
        join_orders = (
            self._analysis.join_orders_for(cu.program)
            if self._analysis is not None
            else None
        )
        skeleton = PlanSkeleton(cu, join_orders=join_orders, pool=self.pool)
        plan = skeleton.bind(
            cu, states_old, relation_factory=self.relations.get
        )
        self._plans[sig] = (skeleton, plan)
        while len(self._plans) > self._max_plans:
            self._plans.popitem(last=False)
        self.plan_binds += 1
        self._count("plan_binds")
        return plan

    def commit(self, cu: CompiledUpdate) -> None:
        """Promote ``cu``'s staged new side to the committed baseline.

        Call only after the round has been verified; the baseline is
        what the *next* round's ``compile`` will reuse as its old side.
        """
        if self._staged is None or self._staged_cu_id != id(cu):
            raise ValueError(
                "commit does not match the staged compile "
                "(compile the round with this cache first)"
            )
        self._prev = self._staged
        self._schema = _edb_schema(self._staged.edb)
        self._staged = None
        self._staged_cu_id = None
        self._staged_states_old = None
        self._staged_zdelta = None

    def rollback(self) -> None:
        """Discard the staged round (failed execution/verification).

        The committed baseline is untouched, so a retry recompiles the
        round deterministically from the same state; relations staged
        for the failed round are value-addressed and simply age out.
        """
        if self._staged is not None:
            self.rollbacks += 1
            self._count("rollbacks")
        self._staged = None
        self._staged_cu_id = None
        self._staged_states_old = None
        self._staged_zdelta = None

    def stats(self) -> dict:
        """Counter snapshot (also exported via the metrics registry)."""
        out = {
            "hits": self.hits,
            "misses": self.misses,
            "invalidations": self.invalidations,
            "plan_patches": self.plan_patches,
            "plan_binds": self.plan_binds,
            "rollbacks": self.rollbacks,
            "cancelled_ops": self.cancelled_ops,
            "storage": self.storage,
            "interned_ops": self.interned_ops,
            "relations": self.relations.stats(),
        }
        if self.pool is not None:
            out["pool"] = self.pool.stats()
        return out
