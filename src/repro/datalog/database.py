"""Fact storage: relations, indexes, and the EDB/IDB database.

A relation is a set of ground tuples plus hash indexes built lazily per
bound-position pattern, so joins probe O(1) buckets instead of scanning.
This is the storage layer under both from-scratch evaluation and
incremental maintenance.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Iterator

from .columnar import ColumnarRelation

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .columnar import InternPool

__all__ = ["Relation", "Database"]

Tuple_ = tuple  # ground tuples of int | str


class Relation:
    """A named set of ground tuples with lazy hash indexes.

    Indexes map a tuple of bound positions, e.g. ``(0,)`` or ``(0, 2)``,
    to buckets keyed by the values at those positions. They are built on
    first use and maintained incrementally on insert/discard.
    """

    def __init__(self, name: str, arity: int) -> None:
        self.name = name
        self.arity = arity
        self._tuples: set[Tuple_] = set()
        self._indexes: dict[tuple[int, ...], dict[tuple, set[Tuple_]]] = {}
        #: columnar mirror (interned id-rows + indexes), built on first
        #: columnar() call and maintained incrementally by add/discard
        self._columnar: ColumnarRelation | None = None

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._tuples)

    def __iter__(self) -> Iterator[Tuple_]:
        return iter(self._tuples)

    def __contains__(self, t: Tuple_) -> bool:
        return t in self._tuples

    def add(self, t: Tuple_) -> bool:
        """Insert; returns True if the tuple is new."""
        if len(t) != self.arity:
            raise ValueError(
                f"{self.name}: tuple {t!r} has arity {len(t)}, "
                f"expected {self.arity}"
            )
        if t in self._tuples:
            return False
        self._tuples.add(t)
        for positions, index in self._indexes.items():
            index[tuple(t[p] for p in positions)].add(t)
        c = self._columnar
        if c is not None:
            c.add_fact(t)
        return True

    def discard(self, t: Tuple_) -> bool:
        """Remove; returns True if the tuple was present."""
        if t not in self._tuples:
            return False
        self._tuples.remove(t)
        for positions, index in self._indexes.items():
            key = tuple(t[p] for p in positions)
            bucket = index.get(key)
            if bucket is not None:
                bucket.discard(t)
                if not bucket:
                    del index[key]
        c = self._columnar
        if c is not None:
            c.discard_fact(t)
        return True

    def _ensure_index(
        self, positions: tuple[int, ...]
    ) -> dict[tuple, set[Tuple_]]:
        index = self._indexes.get(positions)
        if index is None:
            index = defaultdict(set)
            for t in self._tuples:
                index[tuple(t[p] for p in positions)].add(t)
            self._indexes[positions] = index
        return index

    def match(
        self, bound: dict[int, int | str] | None = None
    ) -> Iterable[Tuple_]:
        """Tuples whose values at the bound positions equal the given
        values; full scan when ``bound`` is empty.

        Fully-bound patterns short-circuit to a set membership probe —
        building (and thereafter maintaining) a hash index keyed on
        *every* column would just duplicate the tuple set.
        """
        if not bound:
            return self._tuples
        if len(bound) == self.arity:
            probe = tuple(bound[p] for p in range(self.arity))
            return (probe,) if probe in self._tuples else ()
        positions = tuple(sorted(bound))
        index = self._ensure_index(positions)
        return index.get(tuple(bound[p] for p in positions), ())

    def columnar(self, pool: "InternPool") -> ColumnarRelation:
        """Get-or-build this relation's columnar mirror under ``pool``.

        Built in one pass on first request (interning every fact through
        the pool's per-predicate dictionaries); afterwards :meth:`add`
        and :meth:`discard` maintain the mirror — rows *and* any hash
        indexes probed into existence — incrementally in O(|delta|). A
        mirror keyed to a different pool is discarded and rebuilt: id
        spaces are pool-local.
        """
        c = self._columnar
        if c is None or c.pool is not pool:
            c = ColumnarRelation.from_facts(
                pool, self.name, self.arity, self._tuples
            )
            self._columnar = c
        return c

    def copy(self) -> "Relation":
        r = Relation(self.name, self.arity)
        r._tuples = set(self._tuples)
        return r

    def copy_indexed(self) -> "Relation":
        """Copy that also clones the built hash indexes.

        ``copy()`` drops indexes (cheap, lazily rebuilt on demand); the
        plan cache instead derives a changed relation's successor from
        its predecessor — clone indexes once, then apply the round's
        delta through :meth:`add`/:meth:`discard`, which maintain every
        cloned index incrementally in O(|delta|). The columnar mirror
        (with its own indexes) is cloned the same way.
        """
        r = self.copy()
        if self._columnar is not None:
            r._columnar = self._columnar.clone()
        # snapshot: concurrent match() calls may publish new lazy
        # indexes while we iterate
        for positions, index in list(self._indexes.items()):
            clone: dict[tuple, set[Tuple_]] = defaultdict(set)
            for key, bucket in index.items():
                clone[key] = set(bucket)
            r._indexes[positions] = clone
        return r

    def index_patterns(self) -> tuple[tuple[int, ...], ...]:
        """The bound-position patterns currently indexed (for tests)."""
        return tuple(sorted(self._indexes))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.name}/{self.arity}, {len(self)} tuples)"


@dataclass
class Database:
    """A map predicate → relation, with convenience constructors."""

    relations: dict[str, Relation] = field(default_factory=dict)

    def relation(self, name: str, arity: int | None = None) -> Relation:
        """Get-or-create a relation; checks arity consistency."""
        rel = self.relations.get(name)
        if rel is None:
            if arity is None:
                raise KeyError(f"unknown relation {name!r}")
            rel = Relation(name, arity)
            self.relations[name] = rel
        elif arity is not None and rel.arity != arity:
            raise ValueError(
                f"relation {name} has arity {rel.arity}, requested {arity}"
            )
        return rel

    def add_fact(self, name: str, t: Tuple_) -> bool:
        """Insert a fact (creating the relation); True if new."""
        return self.relation(name, len(t)).add(t)

    def has_fact(self, name: str, t: Tuple_) -> bool:
        """Membership test tolerant of missing relations."""
        rel = self.relations.get(name)
        return rel is not None and t in rel

    def count(self, name: str) -> int:
        """Fact count of a relation (0 if absent)."""
        rel = self.relations.get(name)
        return len(rel) if rel is not None else 0

    def total_facts(self) -> int:
        """Total facts across all relations."""
        return sum(len(r) for r in self.relations.values())

    def copy(self) -> "Database":
        """Deep copy (relations are copied, tuples shared)."""
        return Database({n: r.copy() for n, r in self.relations.items()})

    def as_dict(self) -> dict[str, set[Tuple_]]:
        """Snapshot: predicate → frozen set of tuples (for comparisons)."""
        return {n: set(r) for n, r in self.relations.items()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{n}/{r.arity}:{len(r)}" for n, r in sorted(self.relations.items())
        )
        return f"Database({parts})"
