"""Stratified bottom-up evaluation: naive and semi-naive.

Semi-naive evaluation is the workhorse of Datalog materialization and
the source of the computation DAGs this paper schedules: each stratum's
fixpoint is computed iteratively, and at iteration ``k`` each recursive
rule is evaluated once per body occurrence of a recursive predicate,
with that occurrence restricted to Δ\\ :sub:`k-1` (the facts newly
derived in the previous iteration). The (rule, Δ-position, iteration)
instances are exactly the *tasks* the DAG compiler emits.

:func:`naive_evaluate` re-derives everything every iteration and serves
as the test oracle for :func:`seminaive_evaluate`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .ast import Program, Rule
from .columnar import InternPool, eval_rule_columnar
from .database import Database, Relation
from .depgraph import DependencyGraph
from .unify import eval_rule, instantiate_head, join_body

__all__ = ["naive_evaluate", "seminaive_evaluate", "EvaluationTrace"]


@dataclass
class EvaluationTrace:
    """What semi-naive evaluation did — consumed by the DAG compiler.

    ``iterations[stratum_idx]`` is a list of iteration records; each
    record maps ``(rule_idx, delta_pos)`` to the set of *all* facts the
    rule instance's join produced in that iteration. ``rule_idx``
    indexes ``program.proper_rules`` (global, not stratum-local);
    ``delta_pos`` is None for non-recursive rules, evaluated once in
    iteration 0.
    Recording the full join output — not only the facts that were new —
    makes each record a pure function of the rule's input relations,
    which the DAG compiler relies on to decide whether a task's output
    *changed* between two materializations. Evaluation uses snapshot
    (two-phase) iteration semantics — every rule instance of iteration
    ``k`` joins against the state *after iteration k−1*, and the facts
    it derives only become visible at iteration ``k+1`` — so each
    record is a pure function of the predicate states the compiled DAG
    wires into the task, and re-executing the instances in any
    precedence-respecting order (in particular concurrently, in
    :mod:`repro.runtime`) reproduces the recorded outputs exactly.
    """

    strata: list[list[str]] = field(default_factory=list)
    iterations: list[list[dict]] = field(default_factory=list)

    def total_tasks(self) -> int:
        """Total (rule, Δ-position, iteration) instances recorded."""
        return sum(len(it) for stratum in self.iterations for it in stratum)


def _seed_facts(program: Program, db: Database) -> None:
    for fact in program.facts:
        db.add_fact(
            fact.head.predicate,
            tuple(t.value for t in fact.head.terms),  # type: ignore[union-attr]
        )


def _ensure_relations(program: Program, db: Database) -> None:
    """Create empty relations for every predicate mentioned anywhere."""
    for rule in program.rules:
        atoms = [rule.head] + [
            l.atom for l in rule.body if l.atom is not None
        ]
        for a in atoms:
            db.relation(a.predicate, a.arity)


def naive_evaluate(
    program: Program,
    db: Database | None = None,
    max_iterations: int | None = None,
) -> Database:
    """Naive stratified fixpoint: re-run all rules until no change.

    O(iterations × rules × join cost); the reference implementation.
    ``max_iterations`` bounds the per-stratum passes — arithmetic
    assignments can make fixpoints diverge, and the guard turns an
    infinite loop into a :class:`RuntimeError`.
    """
    db = db.copy() if db is not None else Database()
    _ensure_relations(program, db)
    _seed_facts(program, db)
    strata = DependencyGraph(program).stratify()
    for stratum in strata:
        rules = [
            r for r in program.proper_rules if r.head.predicate in stratum
        ]
        changed = True
        passes = 0
        while changed:
            passes += 1
            if max_iterations is not None and passes > max_iterations:
                raise RuntimeError(
                    f"fixpoint for stratum {stratum} exceeded "
                    f"{max_iterations} iterations (divergent arithmetic?)"
                )
            changed = False
            for rule in rules:
                # two-phase: never mutate a relation while joining over it
                derived = eval_rule(rule, db)
                for fact in derived:
                    if db.add_fact(rule.head.predicate, fact):
                        changed = True
    return db


def seminaive_evaluate(
    program: Program,
    db: Database | None = None,
    record: bool = False,
    max_iterations: int | None = None,
    shared_relations: dict[str, Relation] | None = None,
    pool: InternPool | None = None,
) -> tuple[Database, EvaluationTrace]:
    """Stratified semi-naive fixpoint.

    Returns the materialized database and (when ``record``) the
    per-iteration derivation trace used by the DAG compiler.
    ``max_iterations`` bounds each stratum's Δ rounds (see
    :func:`naive_evaluate`).

    ``shared_relations`` lets a caller substitute pre-indexed
    :class:`Relation` objects for predicates the evaluation only
    *reads* — EDB predicates that are not fact-rule heads. The plan
    cache passes its cross-round indexed relations here so the
    from-scratch joins probe indexes that already exist instead of
    rebuilding them every round. Each shared relation must hold exactly
    the facts ``db`` holds for that predicate; predicates the
    evaluation writes (IDB heads, fact-rule heads) are rejected because
    sharing them would mutate the caller's objects.

    ``pool`` switches rule evaluation to the columnar batch joins of
    :func:`~repro.datalog.columnar.eval_rule_columnar` (interned
    id-rows, vectorized hash probes) — semantics are identical, and
    shared relations additionally carry their columnar mirrors across
    rounds. ``None`` keeps the row evaluator.
    """
    db = db.copy() if db is not None else Database()
    if shared_relations:
        writable = {r.head.predicate for r in program.rules}
        for pred, rel in shared_relations.items():
            if pred in writable:
                raise ValueError(
                    f"cannot share relation {pred!r}: the evaluation "
                    "writes it (IDB or fact-rule head)"
                )
            db.relations[pred] = rel
    _ensure_relations(program, db)
    _seed_facts(program, db)
    depgraph = DependencyGraph(program)
    strata = depgraph.stratify()
    recursive = depgraph.recursive_predicates()
    trace = EvaluationTrace()

    for stratum in strata:
        stratum_set = set(stratum)
        rules = [
            (ri, r)
            for ri, r in enumerate(program.proper_rules)
            if r.head.predicate in stratum_set
        ]
        iteration_records: list[dict] = []

        # iteration 0: every rule, full database.  Two-phase (snapshot)
        # semantics: all rules join against the stratum's entry state,
        # and their outputs merge only after every rule has run — no
        # rule sees a fact derived earlier in the same iteration.
        delta: dict[str, Relation] = {}
        rec0: dict = {}
        staged: list[tuple[Rule, set]] = []
        for ri, rule in rules:
            if pool is not None:
                produced = eval_rule_columnar(rule, db, pool)
            else:
                produced = eval_rule(rule, db)
            if produced or record:
                rec0[(ri, None)] = produced
            staged.append((rule, produced))
        for rule, produced in staged:
            for fact in produced:
                if db.add_fact(rule.head.predicate, fact):
                    delta.setdefault(
                        rule.head.predicate,
                        Relation(rule.head.predicate, len(fact)),
                    ).add(fact)
        iteration_records.append(rec0)

        # iterations 1..: recursive rules with one Δ-occurrence each
        rec_rules = [
            (ri, rule)
            for ri, rule in rules
            if any(
                p in stratum_set and p in recursive
                for p, neg in rule.body_predicates()
                if not neg
            )
        ]
        rounds = 0
        while delta:
            rounds += 1
            if max_iterations is not None and rounds > max_iterations:
                raise RuntimeError(
                    f"fixpoint for stratum {stratum} exceeded "
                    f"{max_iterations} iterations (divergent arithmetic?)"
                )
            new_delta: dict[str, Relation] = {}
            rec_k: dict = {}
            staged_k: list[tuple[Rule, set]] = []
            for ri, rule in rec_rules:
                for pos, lit in enumerate(rule.body):
                    if (
                        lit.atom is None
                        or lit.negated
                        or lit.atom.predicate not in delta
                    ):
                        continue
                    if pool is not None:
                        produced = eval_rule_columnar(
                            rule, db, pool,
                            delta_overrides=delta, delta_at=pos,
                        )
                    else:
                        produced = {
                            instantiate_head(rule.head, subst)
                            for subst in join_body(
                                rule.body, db,
                                delta_overrides=delta, delta_at=pos,
                            )
                        }
                    if produced:
                        rec_k[(ri, pos)] = produced
                    staged_k.append((rule, produced))
            # merge phase: derived facts become visible to iteration k+1
            for rule, produced in staged_k:
                for fact in produced:
                    if db.add_fact(rule.head.predicate, fact):
                        new_delta.setdefault(
                            rule.head.predicate,
                            Relation(rule.head.predicate, len(fact)),
                        ).add(fact)
            if rec_k:
                iteration_records.append(rec_k)
            delta = new_delta

        trace.strata.append(stratum)
        trace.iterations.append(iteration_records)
    return db, trace
