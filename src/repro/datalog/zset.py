"""Weighted (Z-set) deltas: one representation for both update directions.

DBSP-style Z-sets generalize sets to integer *weights* per element: an
insertion carries weight ``+1``, a retraction ``-1``, and addition is
pointwise — so the same algebra expresses updates, their composition,
and their cancellation. A :class:`ZSetDelta` is a Z-set partitioned by
predicate: ``predicate → fact → weight``. Everything downstream of the
update queue speaks this representation:

* the incremental engines (:class:`~repro.datalog.incremental
  .IncrementalEngine`, :class:`~repro.datalog.bf
  .BackwardForwardEngine`, :class:`~repro.datalog.counting
  .CountingEngine`) accumulate their net Δ⁺/Δ⁻ as a ``ZSetDelta`` and
  accept one as an update;
* :func:`effective_zdelta` clamps a queued :class:`~repro.datalog
  .incremental.Delta` against the live EDB into *exact* weights —
  inserting a present fact or deleting an absent one has weight 0 and
  vanishes, so insert/retract pairs coalesced by
  :func:`~repro.datalog.incremental.merge_deltas` cancel **before**
  any compilation or index maintenance happens;
* :meth:`ZSetDelta.apply_to` patches a :class:`Relation`'s tuple set
  (and, through :meth:`Relation.add`/:meth:`Relation.discard`, every
  hash index built on it) in O(|delta|) — the plan cache's
  ``RelationIndexCache`` and the plan skeleton's baseline patching both
  go through it.

Because the engines only record weight changes for transitions that
actually happened (a fact appearing or disappearing from the set
semantics' point of view), weights here stay in ``{-1, 0, +1}`` —
the ``distinct``-normalized form of a Z-set. The algebra still sums
arbitrary integers, which the tests use to check cancellation laws.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator

from .database import Database, Relation

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .incremental import Delta

__all__ = ["ZSetDelta", "effective_zdelta", "apply_zdelta"]


class ZSetDelta:
    """A weighted update: ``predicate → fact → non-zero integer weight``.

    Positive weight means the fact is (net) inserted, negative that it
    is retracted. Weight-zero entries are coalesced away eagerly, so
    ``is_empty`` and ``op_count`` reflect the *net* update.
    """

    __slots__ = ("weights",)

    def __init__(
        self, weights: dict[str, dict[tuple, int]] | None = None
    ) -> None:
        self.weights: dict[str, dict[tuple, int]] = {}
        if weights:
            for pred, facts in weights.items():
                for fact, w in facts.items():
                    self.add(pred, fact, w)

    # ------------------------------------------------------------------
    # construction / algebra
    # ------------------------------------------------------------------
    def add(self, pred: str, fact: tuple, weight: int = 1) -> "ZSetDelta":
        """Add ``weight`` to ``(pred, fact)``; zero entries vanish."""
        if weight == 0:
            return self
        facts = self.weights.setdefault(pred, {})
        w = facts.get(fact, 0) + weight
        if w == 0:
            del facts[fact]
            if not facts:
                del self.weights[pred]
        else:
            facts[fact] = w
        return self

    def insert(self, pred: str, fact: tuple) -> "ZSetDelta":
        """Record one insertion (weight ``+1``); chains."""
        return self.add(pred, fact, 1)

    def delete(self, pred: str, fact: tuple) -> "ZSetDelta":
        """Record one retraction (weight ``-1``); chains."""
        return self.add(pred, fact, -1)

    def merge(self, other: "ZSetDelta") -> "ZSetDelta":
        """Pointwise addition of ``other`` into self; chains."""
        for pred, facts in other.weights.items():
            for fact, w in facts.items():
                self.add(pred, fact, w)
        return self

    def __add__(self, other: "ZSetDelta") -> "ZSetDelta":
        return self.copy().merge(other)

    def __neg__(self) -> "ZSetDelta":
        out = ZSetDelta()
        for pred, facts in self.weights.items():
            out.weights[pred] = {f: -w for f, w in facts.items()}
        return out

    def copy(self) -> "ZSetDelta":
        out = ZSetDelta()
        out.weights = {p: dict(fs) for p, fs in self.weights.items()}
        return out

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ZSetDelta):
            return NotImplemented
        return self.weights == other.weights

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(
            f"{p}:{'+' if w > 0 else ''}{w}×{f!r}"
            for p, fs in sorted(self.weights.items())
            for f, w in sorted(fs.items(), key=repr)
        )
        return f"ZSetDelta({parts})"

    # ------------------------------------------------------------------
    # views
    # ------------------------------------------------------------------
    def weight(self, pred: str, fact: tuple) -> int:
        """The weight of one fact (0 when absent)."""
        return self.weights.get(pred, {}).get(fact, 0)

    @property
    def is_empty(self) -> bool:
        """Whether the net update changes nothing."""
        return not self.weights

    def op_count(self) -> int:
        """Total absolute weight — the number of net operations."""
        return sum(
            abs(w) for facts in self.weights.values() for w in facts.values()
        )

    def touched_predicates(self) -> set[str]:
        """Predicates with at least one non-zero weight."""
        return set(self.weights)

    def touches(self, pred: str) -> bool:
        """Whether ``pred`` has any non-zero weight."""
        return bool(self.weights.get(pred))

    def positive(self) -> dict[str, set[tuple]]:
        """Per-predicate facts with positive weight (net insertions)."""
        out: dict[str, set[tuple]] = {}
        for pred, facts in self.weights.items():
            plus = {f for f, w in facts.items() if w > 0}
            if plus:
                out[pred] = plus
        return out

    def negative(self) -> dict[str, set[tuple]]:
        """Per-predicate facts with negative weight (net retractions)."""
        out: dict[str, set[tuple]] = {}
        for pred, facts in self.weights.items():
            minus = {f for f, w in facts.items() if w < 0}
            if minus:
                out[pred] = minus
        return out

    def items(self) -> Iterator[tuple[str, tuple, int]]:
        """Iterate ``(predicate, fact, weight)`` triples."""
        for pred, facts in self.weights.items():
            for fact, w in facts.items():
                yield pred, fact, w

    def relations(self, sign: int = 1) -> dict[str, Relation]:
        """The facts of one sign as indexable delta relations.

        ``sign > 0`` builds relations over the positively-weighted facts,
        ``sign < 0`` over the negatively-weighted ones — the shape the
        semi-naive Δ-joins consume.
        """
        side = self.positive() if sign > 0 else self.negative()
        out: dict[str, Relation] = {}
        for pred, facts in side.items():
            rel = Relation(pred, len(next(iter(facts))))
            for f in facts:
                rel.add(f)
            out[pred] = rel
        return out

    # ------------------------------------------------------------------
    # conversions
    # ------------------------------------------------------------------
    @classmethod
    def from_delta(cls, delta: "Delta") -> "ZSetDelta":
        """Weighted form of a set-semantics :class:`Delta`.

        Deletions weigh ``-1`` and insertions ``+1``; a fact named in
        both sets follows :func:`~repro.datalog.incremental.apply_delta`
        semantics (deletions first, so the insertion wins) and nets to
        ``+1``... which pointwise addition gives for free only because
        canonical deltas never hold a fact in both sets — so a fact in
        both is resolved explicitly as an insertion here.
        """
        out = cls()
        for pred, facts in delta.deletions.items():
            ins = delta.insertions.get(pred)
            for f in facts:
                if ins is None or f not in ins:
                    out.add(pred, f, -1)
        for pred, facts in delta.insertions.items():
            for f in facts:
                out.add(pred, f, 1)
        return out

    def to_delta(self) -> "Delta":
        """The set-semantics :class:`Delta` with these net operations."""
        from .incremental import Delta

        out = Delta()
        for pred, fact, w in self.items():
            if w > 0:
                out.insert(pred, fact)
            else:
                out.delete(pred, fact)
        return out

    # ------------------------------------------------------------------
    # application
    # ------------------------------------------------------------------
    def ops_for(self, pred: str) -> Iterable[tuple[tuple, int]]:
        """``(fact, weight)`` pairs for one predicate (possibly empty)."""
        return self.weights.get(pred, {}).items()

    def apply_to(self, rel: Relation, pred: str | None = None) -> int:
        """Patch ``rel`` in place with this delta's ops for its predicate.

        Uses :meth:`Relation.add`/:meth:`Relation.discard`, so every
        hash index already built on the relation is maintained in
        O(|delta|). Returns the number of facts that actually changed.
        """
        changed = 0
        for fact, w in self.ops_for(pred if pred is not None else rel.name):
            if w > 0:
                changed += rel.add(fact)
            else:
                changed += rel.discard(fact)
        return changed


def effective_zdelta(edb: Database, delta: "Delta") -> ZSetDelta:
    """Clamp ``delta`` against ``edb`` into exact weights.

    The result holds weight ``+1`` exactly for insertions of facts the
    EDB lacks and ``-1`` for deletions of facts it holds — every other
    queued operation is a set-semantics no-op and cancels to weight 0.
    ``apply_delta(edb, delta)`` and ``apply_zdelta(edb,
    effective_zdelta(edb, delta))`` produce the same fact sets, but the
    effective form exposes *how little* actually changes: an empty
    result means the whole round can be skipped, and its ``op_count``
    is the real index-maintenance bill.

    A fact named in both sets of a non-canonical delta resolves as an
    insertion (deletions apply first), matching
    :func:`~repro.datalog.incremental.apply_delta`.
    """
    out = ZSetDelta()
    for pred, facts in delta.deletions.items():
        rel = edb.relations.get(pred)
        ins = delta.insertions.get(pred)
        for f in facts:
            if ins is not None and f in ins:
                continue  # insertion wins; handled below
            if rel is not None and f in rel:
                out.add(pred, f, -1)
    for pred, facts in delta.insertions.items():
        rel = edb.relations.get(pred)
        for f in facts:
            if rel is None or f not in rel:
                out.add(pred, f, 1)
    return out


def apply_zdelta(edb: Database, zdelta: ZSetDelta) -> Database:
    """A copy of ``edb`` with ``zdelta`` applied.

    Exact weighted twin of :func:`~repro.datalog.incremental
    .apply_delta`: retractions discard, insertions add, and only the
    touched relations are visited beyond the initial copy.
    """
    out = edb.copy()
    for pred, fact, w in zdelta.items():
        if w > 0:
            out.relation(pred, len(fact)).add(fact)
        else:
            rel = out.relations.get(pred)
            if rel is not None:
                rel.discard(fact)
    return out
