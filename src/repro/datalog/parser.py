"""Recursive-descent parser: text → :class:`repro.datalog.ast.Program`.

Grammar::

    program    ::= clause*
    clause     ::= head ( ":-" body )? "."
    head       ::= IDENT "(" hterm ("," hterm)* ")" | IDENT
    hterm      ::= term | AGG "(" VAR ")"            (AGG ∈ count|sum|min|max)
    body       ::= literal ("," literal)*
    literal    ::= "!"? atom
                 | term cmp-op term                  (== != < <= > >=)
                 | VAR "=" term (("+"|"-"|"*") term)?
    atom       ::= IDENT "(" term ("," term)* ")" | IDENT
    term       ::= VAR | INT | STRING | IDENT        (IDENT = symbol)

Zero-arity atoms (``tick.``) are allowed. Comparisons use the body-term
syntax directly (``path(X, Y), X != Y``); arithmetic appears only on
the right side of an assignment, spaced (``D2 = D + 1`` — ``-5`` is a
negative literal, ``D - 5`` a subtraction).
"""

from __future__ import annotations

from .ast import (
    AGGREGATE_OPS,
    ARITH_OPS,
    Aggregate,
    Assignment,
    Atom,
    Comparison,
    Constant,
    Literal,
    Program,
    Rule,
    Variable,
)
from .lexer import LexError, Token, tokenize

__all__ = ["parse_program", "parse_rule", "ParseError"]


class ParseError(ValueError):
    """Raised on syntactically invalid input, with token context."""


class _Parser:
    def __init__(self, text: str) -> None:
        try:
            self.tokens = list(tokenize(text))
        except LexError as exc:
            raise ParseError(str(exc)) from exc
        self.pos = 0

    # ------------------------------------------------------------------
    def peek(self) -> Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> Token:
        tok = self.peek()
        if tok is None:
            raise ParseError("unexpected end of input")
        self.pos += 1
        return tok

    def expect(self, kind: str, text: str | None = None) -> Token:
        tok = self.next()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = f"{kind} {text!r}" if text else kind
            raise ParseError(f"expected {want}, got {tok!r}")
        return tok

    def at(self, kind: str, text: str | None = None) -> bool:
        tok = self.peek()
        return (
            tok is not None
            and tok.kind == kind
            and (text is None or tok.text == text)
        )

    # ------------------------------------------------------------------
    def parse_term(self):
        tok = self.next()
        if tok.kind == "VAR":
            return Variable(tok.text)
        if tok.kind == "INT":
            return Constant(int(tok.text))
        if tok.kind == "STRING":
            return Constant(tok.text)
        if tok.kind == "IDENT":
            return Constant(tok.text)  # lowercase symbol constant
        raise ParseError(f"expected a term, got {tok!r}")

    def parse_head_term(self):
        """A head term: a plain term or an aggregate ``op(Var)``."""
        tok = self.peek()
        nxt = (
            self.tokens[self.pos + 1]
            if self.pos + 1 < len(self.tokens)
            else None
        )
        if (
            tok is not None
            and tok.kind == "IDENT"
            and tok.text in AGGREGATE_OPS
            and nxt is not None
            and nxt.kind == "PUNCT"
            and nxt.text == "("
        ):
            op = self.next().text
            self.expect("PUNCT", "(")
            var_tok = self.expect("VAR")
            self.expect("PUNCT", ")")
            return Aggregate(op, Variable(var_tok.text))
        return self.parse_term()

    def parse_atom(self, allow_aggregates: bool = False) -> Atom:
        name = self.expect("IDENT").text
        terms: list = []
        term = self.parse_head_term if allow_aggregates else self.parse_term
        if self.at("PUNCT", "("):
            self.next()
            terms.append(term())
            while self.at("PUNCT", ","):
                self.next()
                terms.append(term())
            self.expect("PUNCT", ")")
        return Atom(name, tuple(terms))

    def parse_literal(self) -> Literal:
        if self.at("BANG"):
            self.next()
            return Literal(atom=self.parse_atom(), negated=True)
        # lookahead: "IDENT (" or bare IDENT is an atom; otherwise it must
        # be a comparison whose left side is a term
        tok = self.peek()
        if tok is not None and tok.kind == "IDENT":
            nxt = (
                self.tokens[self.pos + 1]
                if self.pos + 1 < len(self.tokens)
                else None
            )
            if nxt is None or nxt.kind != "OP":
                return Literal(atom=self.parse_atom())
        left = self.parse_term()
        op = self.expect("OP").text
        if op == "=":
            if not isinstance(left, Variable):
                raise ParseError(
                    f"assignment target must be a variable, got {left!r}"
                )
            expr_left = self.parse_term()
            nxt = self.peek()
            if nxt is not None and nxt.kind == "OP" and nxt.text in ARITH_OPS:
                arith = self.next().text
                expr_right = self.parse_term()
                return Literal(
                    assignment=Assignment(left, expr_left, arith, expr_right)
                )
            return Literal(assignment=Assignment(left, expr_left))
        if op in ARITH_OPS:
            raise ParseError(
                f"unexpected arithmetic operator {op!r}; arithmetic is "
                "only allowed on the right side of an assignment"
            )
        right = self.parse_term()
        return Literal(comparison=Comparison(op, left, right))

    def parse_clause(self) -> Rule:
        head = self.parse_atom(allow_aggregates=True)
        body: list[Literal] = []
        if self.at("ARROW"):
            self.next()
            body.append(self.parse_literal())
            while self.at("PUNCT", ","):
                self.next()
                body.append(self.parse_literal())
        self.expect("PUNCT", ".")
        try:
            return Rule(head, tuple(body))
        except ValueError as exc:
            raise ParseError(str(exc)) from exc

    def parse_program(self) -> Program:
        rules: list[Rule] = []
        while self.peek() is not None:
            rules.append(self.parse_clause())
        try:
            return Program(rules)
        except ValueError as exc:
            raise ParseError(str(exc)) from exc


def parse_program(text: str) -> Program:
    """Parse a whole program (facts and rules)."""
    return _Parser(text).parse_program()


def parse_rule(text: str) -> Rule:
    """Parse a single clause; raises if there is trailing input."""
    p = _Parser(text)
    rule = p.parse_clause()
    if p.peek() is not None:
        raise ParseError(f"trailing input after clause: {p.peek()!r}")
    return rule
