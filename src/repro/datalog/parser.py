"""Recursive-descent parser: text → :class:`repro.datalog.ast.Program`.

Grammar::

    program    ::= clause*
    clause     ::= head ( ":-" body )? "."
    head       ::= IDENT "(" hterm ("," hterm)* ")" | IDENT
    hterm      ::= term | AGG "(" VAR ")"            (AGG ∈ count|sum|min|max)
    body       ::= literal ("," literal)*
    literal    ::= "!"? atom
                 | term cmp-op term                  (== != < <= > >=)
                 | VAR "=" term (("+"|"-"|"*") term)?
    atom       ::= IDENT "(" term ("," term)* ")" | IDENT
    term       ::= VAR | INT | STRING | IDENT        (IDENT = symbol)

Zero-arity atoms (``tick.``) are allowed. Comparisons use the body-term
syntax directly (``path(X, Y), X != Y``); arithmetic appears only on
the right side of an assignment, spaced (``D2 = D + 1`` — ``-5`` is a
negative literal, ``D - 5`` a subtraction).

Every :class:`ParseError` carries the 1-based source position of the
offending token (``.line``/``.col``, also embedded in the message), and
parsed atoms/comparisons/assignments are stamped with their positions
so downstream diagnostics (:mod:`repro.verify.program`) point at real
source spans. :func:`parse_program_lenient` recovers at clause
boundaries and returns the errors instead of raising, for analyzers
that want to report *all* problems in a file.
"""

from __future__ import annotations

from .ast import (
    AGGREGATE_OPS,
    ARITH_OPS,
    Aggregate,
    Assignment,
    Atom,
    Comparison,
    Constant,
    Literal,
    Program,
    Rule,
    Variable,
)
from .lexer import LexError, Token, tokenize

__all__ = [
    "parse_program",
    "parse_program_lenient",
    "parse_rule",
    "ParseError",
]


class ParseError(ValueError):
    """Raised on syntactically invalid input, with token context.

    ``line``/``col`` hold the 1-based position of the offending token
    (``None`` when no position is known, e.g. whole-program checks).
    """

    def __init__(
        self, message: str, line: int | None = None, col: int | None = None
    ) -> None:
        if line is not None:
            message = f"{message} at line {line}, column {col}"
        super().__init__(message)
        self.line = line
        self.col = col


class _Parser:
    def __init__(self, text: str) -> None:
        try:
            self.tokens = list(tokenize(text))
        except LexError as exc:
            err = ParseError(str(exc))
            err.line = exc.line
            err.col = exc.col
            raise err from exc
        self.pos = 0

    # ------------------------------------------------------------------
    def peek(self) -> Token | None:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> Token:
        tok = self.peek()
        if tok is None:
            last = self.tokens[-1] if self.tokens else None
            raise ParseError(
                "unexpected end of input",
                last.line if last else None,
                last.col if last else None,
            )
        self.pos += 1
        return tok

    def expect(self, kind: str, text: str | None = None) -> Token:
        tok = self.next()
        if tok.kind != kind or (text is not None and tok.text != text):
            want = f"{kind} {text!r}" if text else kind
            raise ParseError(
                f"expected {want}, got {tok!r}", tok.line, tok.col
            )
        return tok

    def at(self, kind: str, text: str | None = None) -> bool:
        tok = self.peek()
        return (
            tok is not None
            and tok.kind == kind
            and (text is None or tok.text == text)
        )

    # ------------------------------------------------------------------
    def parse_term(self):
        tok = self.next()
        if tok.kind == "VAR":
            return Variable(tok.text)
        if tok.kind == "INT":
            return Constant(int(tok.text))
        if tok.kind == "STRING":
            return Constant(tok.text)
        if tok.kind == "IDENT":
            return Constant(tok.text)  # lowercase symbol constant
        raise ParseError(f"expected a term, got {tok!r}", tok.line, tok.col)

    def parse_head_term(self):
        """A head term: a plain term or an aggregate ``op(Var)``."""
        tok = self.peek()
        nxt = (
            self.tokens[self.pos + 1]
            if self.pos + 1 < len(self.tokens)
            else None
        )
        if (
            tok is not None
            and tok.kind == "IDENT"
            and tok.text in AGGREGATE_OPS
            and nxt is not None
            and nxt.kind == "PUNCT"
            and nxt.text == "("
        ):
            op = self.next().text
            self.expect("PUNCT", "(")
            var_tok = self.expect("VAR")
            self.expect("PUNCT", ")")
            return Aggregate(op, Variable(var_tok.text))
        return self.parse_term()

    def parse_atom(self, allow_aggregates: bool = False) -> Atom:
        name_tok = self.expect("IDENT")
        terms: list = []
        term = self.parse_head_term if allow_aggregates else self.parse_term
        if self.at("PUNCT", "("):
            self.next()
            terms.append(term())
            while self.at("PUNCT", ","):
                self.next()
                terms.append(term())
            self.expect("PUNCT", ")")
        return Atom(
            name_tok.text, tuple(terms), line=name_tok.line, col=name_tok.col
        )

    def parse_literal(self) -> Literal:
        if self.at("BANG"):
            self.next()
            return Literal(atom=self.parse_atom(), negated=True)
        # lookahead: "IDENT (" or bare IDENT is an atom; otherwise it must
        # be a comparison whose left side is a term
        tok = self.peek()
        if tok is not None and tok.kind == "IDENT":
            nxt = (
                self.tokens[self.pos + 1]
                if self.pos + 1 < len(self.tokens)
                else None
            )
            if nxt is None or nxt.kind != "OP":
                return Literal(atom=self.parse_atom())
        start = self.peek()
        line = start.line if start else None
        col = start.col if start else None
        left = self.parse_term()
        op_tok = self.expect("OP")
        op = op_tok.text
        if op == "=":
            if not isinstance(left, Variable):
                raise ParseError(
                    f"assignment target must be a variable, got {left!r}",
                    line,
                    col,
                )
            expr_left = self.parse_term()
            nxt = self.peek()
            if nxt is not None and nxt.kind == "OP" and nxt.text in ARITH_OPS:
                arith = self.next().text
                expr_right = self.parse_term()
                return Literal(
                    assignment=Assignment(
                        left, expr_left, arith, expr_right,
                        line=line, col=col,
                    )
                )
            return Literal(
                assignment=Assignment(left, expr_left, line=line, col=col)
            )
        if op in ARITH_OPS:
            raise ParseError(
                f"unexpected arithmetic operator {op!r}; arithmetic is "
                "only allowed on the right side of an assignment",
                op_tok.line,
                op_tok.col,
            )
        right = self.parse_term()
        return Literal(
            comparison=Comparison(op, left, right, line=line, col=col)
        )

    def parse_clause(self, check: bool = True) -> Rule:
        head = self.parse_atom(allow_aggregates=True)
        body: list[Literal] = []
        if self.at("ARROW"):
            self.next()
            body.append(self.parse_literal())
            while self.at("PUNCT", ","):
                self.next()
                body.append(self.parse_literal())
        self.expect("PUNCT", ".")
        try:
            return Rule(head, tuple(body), check=check)
        except ValueError as exc:
            raise ParseError(str(exc), head.line, head.col) from exc

    def parse_program(self) -> Program:
        rules: list[Rule] = []
        while self.peek() is not None:
            rules.append(self.parse_clause())
        try:
            return Program(rules)
        except ValueError as exc:
            raise ParseError(str(exc)) from exc


def parse_program(text: str) -> Program:
    """Parse a whole program (facts and rules)."""
    return _Parser(text).parse_program()


def parse_program_lenient(text: str) -> tuple[Program, list[ParseError]]:
    """Parse as much of ``text`` as possible, collecting errors.

    Clause-level recovery: a clause that fails to parse is skipped up
    to (and including) the next ``.`` and its :class:`ParseError`
    recorded; the remaining clauses still parse. Rule and program
    well-formedness checks (safety, arity consistency) are *disabled* —
    the static analyzer re-derives those as positioned findings — so
    the returned :class:`~repro.datalog.ast.Program` may be unsafe and
    must not be evaluated directly.
    """
    errors: list[ParseError] = []
    try:
        p = _Parser(text)
    except ParseError as exc:
        return Program([], check=False), [exc]
    rules: list[Rule] = []
    while p.peek() is not None:
        start = p.pos
        try:
            rules.append(p.parse_clause(check=False))
        except ParseError as exc:
            errors.append(exc)
            if p.pos == start:
                p.pos += 1  # guarantee progress on a stuck prefix
            while p.peek() is not None and not p.at("PUNCT", "."):
                p.pos += 1
            if p.peek() is not None:
                p.pos += 1  # consume the clause terminator
    return Program(rules, check=False), errors


def parse_rule(text: str) -> Rule:
    """Parse a single clause; raises if there is trailing input."""
    p = _Parser(text)
    rule = p.parse_clause()
    if p.peek() is not None:
        raise ParseError(f"trailing input after clause: {p.peek()!r}")
    return rule
