"""A from-scratch Datalog engine: the substrate the paper's schedulers serve.

Parsing → stratification → semi-naive materialization → incremental
maintenance (weighted Z-set deltas; DRed, Backward/Forward, and
counting strategies) → compilation of an update into the
computation-DAG job traces that :mod:`repro.schedulers` schedules.
"""

from .ast import (
    Atom,
    Comparison,
    Constant,
    Literal,
    Program,
    Rule,
    Variable,
)
from .bf import (
    MAINTENANCE_STRATEGIES,
    BackwardForwardEngine,
    make_engine,
)
from .columnar import (
    ColumnarRelation,
    ColumnarZSet,
    InternPool,
    InternTable,
    eval_rule_columnar,
)
from .compiler import CompiledUpdate, build_compiled_update, compile_update
from .counting import CountingEngine, RecursionError_
from .database import Database, Relation
from .depgraph import DependencyGraph, StratificationError
from .incremental import (
    Delta,
    IncrementalEngine,
    MaintenanceTrace,
    apply_delta,
    merge_deltas,
)
from .parser import (
    ParseError,
    parse_program,
    parse_program_lenient,
    parse_rule,
)
from .plancache import CompiledProgramCache, RelationIndexCache
from .provenance import Derivation, explain
from .query import parse_goal, query, query_facts
from .seminaive import EvaluationTrace, naive_evaluate, seminaive_evaluate
from .zset import ZSetDelta, apply_zdelta, effective_zdelta

__all__ = [
    "Variable",
    "Constant",
    "Atom",
    "Comparison",
    "Literal",
    "Rule",
    "Program",
    "parse_program",
    "parse_program_lenient",
    "parse_rule",
    "ParseError",
    "Database",
    "Relation",
    "DependencyGraph",
    "StratificationError",
    "naive_evaluate",
    "seminaive_evaluate",
    "EvaluationTrace",
    "Delta",
    "ZSetDelta",
    "apply_zdelta",
    "effective_zdelta",
    "InternTable",
    "InternPool",
    "ColumnarRelation",
    "ColumnarZSet",
    "eval_rule_columnar",
    "IncrementalEngine",
    "BackwardForwardEngine",
    "MAINTENANCE_STRATEGIES",
    "make_engine",
    "apply_delta",
    "merge_deltas",
    "CountingEngine",
    "RecursionError_",
    "MaintenanceTrace",
    "compile_update",
    "build_compiled_update",
    "CompiledUpdate",
    "CompiledProgramCache",
    "RelationIndexCache",
    "explain",
    "Derivation",
    "parse_goal",
    "query",
    "query_facts",
]
