"""Runnable units of work behind a compiled update DAG.

:func:`repro.datalog.compiler.compile_update` unrolls one maintenance
round into a static DAG whose nodes are EDB sources, rule-instance
tasks, and predicate-state nodes. This module turns that DAG into an
:class:`ExecutionPlan`: every node becomes a :class:`WorkUnit` whose
``execute`` *actually applies* the node's semi-naive delta rule (or
state merge) to the values produced by its DAG inputs, via the same
:mod:`repro.datalog.unify` joins the evaluator uses.

The diff between a unit's output and its recorded value under the old
materialization is the paper's changed/unchanged signal, computed from
real data — :mod:`repro.runtime.executor` uses it to decide child
activation instead of the compiler's precomputed flags.

Correctness rests on the snapshot (two-phase) iteration semantics of
:func:`repro.datalog.seminaive.seminaive_evaluate`: every recorded
rule-instance output is a pure function of the previous iteration's
predicate states, which are exactly the values the DAG wires into the
task. Executing units in any precedence-respecting order — serial or
concurrent — therefore reproduces the recorded new materialization,
and the per-node diffs reproduce the compiled activation pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .compiler import CompiledUpdate, _cumulative_states
from .database import Database, Relation
from .depgraph import DependencyGraph
from .unify import eval_rule, instantiate_head, join_body

__all__ = ["WorkUnit", "ValueStore", "ExecutionPlan", "build_execution_plan"]


@dataclass
class WorkUnit:
    """One runnable DAG node: a pure function of its input values."""

    node: int
    kind: str  #: ``"edb"`` | ``"pred"`` | ``"task"``
    label: str
    #: the node's recorded value under the *old* materialization —
    #: diffing against it yields the real changed/unchanged signal
    old_value: frozenset
    run: Callable[["ValueStore"], frozenset]

    def execute(self, values: "ValueStore") -> frozenset:
        """Compute this node's output from its inputs' values."""
        return self.run(values)


class ValueStore:
    """Per-round node values, falling back to old values when skipped.

    A deactivated node is never executed — incremental maintenance
    reuses its old value — so readers fall back to
    ``plan.old_values[node]`` for any node without a computed value.
    The executor guarantees a unit only reads nodes that are already
    *resolved* (executed or deactivated), so the fallback is sound.
    """

    def __init__(self, plan: "ExecutionPlan") -> None:
        self._old = plan.old_values
        self._values: dict[int, frozenset] = {}

    def __getitem__(self, node: int) -> frozenset:
        got = self._values.get(node)
        return self._old[node] if got is None else got

    def set(self, node: int, value: frozenset) -> None:
        """Record a computed value (coordinator thread only)."""
        self._values[node] = value

    def computed(self, node: int) -> bool:
        """Whether ``node`` was actually executed this round."""
        return node in self._values


@dataclass
class ExecutionPlan:
    """Every node of a compiled update as a runnable :class:`WorkUnit`."""

    compiled: CompiledUpdate
    units: list[WorkUnit]
    old_values: list[frozenset]
    #: predicate → node id carrying its final value
    final_nodes: dict[str, int] = field(default_factory=dict)

    def new_store(self) -> ValueStore:
        """A fresh value store for one execution of this plan."""
        return ValueStore(self)

    def materialization(self, values: ValueStore) -> Database:
        """Assemble the full database the executed round produced."""
        out = Database()
        ref = self.compiled.db_new
        for pred, rel in ref.relations.items():
            fresh = out.relation(pred, rel.arity)
            node = self.final_nodes.get(pred)
            if node is not None:
                facts = values[node]
            else:
                # relation never mentioned by the program: carried
                # through from the EDB untouched
                facts = _facts_of(self.compiled.edb_new, pred)
            for fact in facts:
                fresh.add(fact)
        return out

    def execute_serial(self) -> tuple[ValueStore, dict[int, bool]]:
        """Reference execution: run every unit in level order.

        Returns the value store and the real per-node change flags —
        the test oracle for both the concurrent executor and the
        compiler's precomputed activation pattern.
        """
        values = self.new_store()
        diffs: dict[int, bool] = {}
        levels = self.compiled.trace.levels
        for node in np.argsort(levels, kind="stable"):
            unit = self.units[int(node)]
            value = unit.execute(values)
            values.set(unit.node, value)
            diffs[unit.node] = value != unit.old_value
        return values, diffs


def _facts_of(db: Database, pred: str) -> frozenset:
    rel = db.relations.get(pred)
    return frozenset(rel) if rel is not None else frozenset()


def _relation_from(pred: str, arity: int, facts: frozenset) -> Relation:
    rel = Relation(pred, arity)
    for f in facts:
        rel.add(f)
    return rel


def build_execution_plan(cu: CompiledUpdate) -> ExecutionPlan:
    """Rebuild every node of ``cu`` as a runnable unit of work."""
    program = cu.program
    rules = program.proper_rules
    depgraph = DependencyGraph(program)
    strata = depgraph.stratify()
    ev_old, ev_new = cu.eval_old, cu.eval_new
    states_old = _cumulative_states(program, ev_old, cu.edb_old)
    n_iters = [
        max(len(ev_old.iterations[si]), len(ev_new.iterations[si]))
        for si in range(len(strata))
    ]
    stratum_of = {p: si for si, comp in enumerate(strata) for p in comp}
    edb_set = program.edb_predicates()

    # program facts are every predicate's baseline state
    base: dict[str, frozenset] = {}
    fact_sets: dict[str, set] = {}
    for fact_rule in program.facts:
        fact_sets.setdefault(fact_rule.head.predicate, set()).add(
            tuple(t.value for t in fact_rule.head.terms)  # type: ignore[union-attr]
        )
    for p, s in fact_sets.items():
        base[p] = frozenset(s)

    arity_of: dict[str, int] = {}
    for db in (cu.edb_old, cu.edb_new, cu.db_old, cu.db_new):
        for p, rel in db.relations.items():
            arity_of.setdefault(p, rel.arity)
    for rule in program.rules:
        for atom in [rule.head] + [
            lit.atom for lit in rule.body if lit.atom is not None
        ]:
            arity_of.setdefault(atom.predicate, atom.arity)

    key_to_id = {
        key: nid for nid, key in enumerate(cu.node_keys) if key is not None
    }

    def out_id(p: str) -> int:
        """Node carrying ``p``'s final value (mirrors the compiler)."""
        if p in edb_set:
            return key_to_id[("edb", p)]
        si = stratum_of[p]
        return key_to_id[("pred", p, si, n_iters[si] - 1)]

    # writer tasks per predicate-state node, from the task keys
    writers: dict[tuple[str, int, int], list[int]] = {}
    for nid, key in enumerate(cu.node_keys):
        if key is not None and key[0] == "task":
            _, si, k, ri, _pos = key
            head = rules[ri].head.predicate
            writers.setdefault((head, si, k), []).append(nid)
    for ws in writers.values():
        ws.sort()

    def baseline(q: str) -> frozenset:
        """Program facts plus any stray EDB facts for ``q`` — the state
        a stratum-local predicate starts from in the new evaluation."""
        return base.get(q, frozenset()) | _facts_of(cu.edb_new, q)

    def make_edb_unit(nid: int, p: str) -> WorkUnit:
        facts = base.get(p, frozenset())
        old = _facts_of(cu.edb_old, p) | facts
        new = _facts_of(cu.edb_new, p) | facts
        return WorkUnit(
            node=nid, kind="edb", label=f"edb:{p}", old_value=old,
            run=lambda _values, _v=new: _v,
        )

    def make_pred_unit(nid: int, p: str, si: int, k: int) -> WorkUnit:
        ko = min(k, len(ev_old.iterations[si]) - 1)
        old = states_old.get((p, si, ko), states_old.get((p, si, -1)))
        prev_id = key_to_id[("pred", p, si, k - 1)] if k > 0 else None
        entry = baseline(p)
        task_ids = tuple(writers.get((p, si, k), ()))

        def run(values: ValueStore) -> frozenset:
            acc = set(values[prev_id]) if prev_id is not None else set(entry)
            for tid in task_ids:
                acc |= values[tid]
            return frozenset(acc)

        return WorkUnit(
            node=nid, kind="pred", label=f"{p}@{si}.{k}",
            old_value=old if old is not None else frozenset(), run=run,
        )

    def make_task_unit(
        nid: int, si: int, k: int, ri: int, pos: int | None
    ) -> WorkUnit:
        rule = rules[ri]
        rec_old = (
            ev_old.iterations[si][k]
            if k < len(ev_old.iterations[si])
            else {}
        )
        old = frozenset(rec_old.get((ri, pos), frozenset()))
        stratum_set = set(strata[si])

        # where each body predicate's input value comes from: a node id,
        # or a constant baseline for stratum-local predicates at k == 0
        sources: dict[str, int | None] = {}
        for lit in rule.body:
            if lit.atom is None:
                continue
            q = lit.atom.predicate
            if q in sources:
                continue
            if q in stratum_set and q not in edb_set:
                sources[q] = (
                    key_to_id[("pred", q, si, k - 1)] if k > 0 else None
                )
            else:
                sources[q] = out_id(q)

        if pos is not None:
            dq = rule.body[pos].atom.predicate  # type: ignore[union-attr]
            delta_cur = key_to_id[("pred", dq, si, k - 1)]
            delta_prev = (
                key_to_id[("pred", dq, si, k - 2)] if k >= 2 else None
            )
        else:
            dq = None
            delta_cur = delta_prev = None

        def run(values: ValueStore) -> frozenset:
            db = Database()
            for q, src in sources.items():
                facts = values[src] if src is not None else baseline(q)
                db.relations[q] = _relation_from(q, arity_of[q], facts)
            if pos is None:
                return frozenset(eval_rule(rule, db))
            older = (
                values[delta_prev]
                if delta_prev is not None
                else baseline(dq)
            )
            delta_facts = values[delta_cur] - older
            if not delta_facts:
                return frozenset()
            delta_rel = _relation_from(dq, arity_of[dq], delta_facts)
            return frozenset(
                instantiate_head(rule.head, subst)
                for subst in join_body(
                    rule.body, db,
                    delta_overrides={dq: delta_rel}, delta_at=pos,
                )
            )

        suffix = f".d{pos}" if pos is not None else ""
        return WorkUnit(
            node=nid, kind="task", label=f"r{ri}@{si}.{k}{suffix}",
            old_value=old, run=run,
        )

    units: list[WorkUnit] = []
    for nid, key in enumerate(cu.node_keys):
        if key is None:  # pragma: no cover - compiler keys every node
            raise ValueError(f"node {nid} has no builder key")
        if key[0] == "edb":
            units.append(make_edb_unit(nid, key[1]))
        elif key[0] == "pred":
            units.append(make_pred_unit(nid, key[1], key[2], key[3]))
        elif key[0] == "task":
            units.append(make_task_unit(nid, key[1], key[2], key[3], key[4]))
        else:  # pragma: no cover - exhaustive over compiler kinds
            raise ValueError(f"unknown node key {key!r}")

    final_nodes: dict[str, int] = {}
    for p in cu.db_new.relations:
        if p in edb_set or p in stratum_of:
            final_nodes[p] = out_id(p)

    return ExecutionPlan(
        compiled=cu,
        units=units,
        old_values=[u.old_value for u in units],
        final_nodes=final_nodes,
    )
