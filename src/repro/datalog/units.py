"""Runnable units of work behind a compiled update DAG.

:func:`repro.datalog.compiler.compile_update` unrolls one maintenance
round into a static DAG whose nodes are EDB sources, rule-instance
tasks, and predicate-state nodes. This module turns that DAG into an
:class:`ExecutionPlan`: every node becomes a :class:`WorkUnit` whose
``execute`` *actually applies* the node's semi-naive delta rule (or
state merge) to the values produced by its DAG inputs, via the same
:mod:`repro.datalog.unify` joins the evaluator uses.

The diff between a unit's output and its recorded value under the old
materialization is the paper's changed/unchanged signal, computed from
real data — :mod:`repro.runtime.executor` uses it to decide child
activation instead of the compiler's precomputed flags.

Skeleton / binding split
------------------------
Plan construction is two-phase so the plan cache can reuse work across
rounds:

* :class:`PlanSkeleton` holds everything that depends only on the
  *structure* of the compiled DAG (``node_keys``) and the program: node
  wiring (which value-store slots each unit reads), writer lists,
  Δ-occurrence slots, arities. Building it walks every rule body once
  per task node — the expensive part of plan construction.
* :meth:`PlanSkeleton.bind` stamps one round's *data* onto the skeleton
  — per-node old values, EDB baselines — producing an
  :class:`ExecutionPlan`. :meth:`PlanSkeleton.patch` restamps an
  existing plan in place for a new round with the same structure, so
  the unit closures (and their wiring) are reused verbatim.

Unit closures read per-round data through the plan's :class:`RoundCtx`,
never through captured constants, which is what makes patching sound.

Correctness rests on the snapshot (two-phase) iteration semantics of
:func:`repro.datalog.seminaive.seminaive_evaluate`: every recorded
rule-instance output is a pure function of the previous iteration's
predicate states, which are exactly the values the DAG wires into the
task. Executing units in any precedence-respecting order — serial or
concurrent — therefore reproduces the recorded new materialization,
and the per-node diffs reproduce the compiled activation pattern.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from .columnar import InternPool, eval_rule_columnar
from .compiler import CompiledUpdate, _cumulative_states
from .database import Database, Relation
from .depgraph import DependencyGraph
from .unify import eval_rule, instantiate_head, join_body
from .zset import ZSetDelta

__all__ = [
    "WorkUnit",
    "ValueStore",
    "ExecutionPlan",
    "PlanSkeleton",
    "RoundCtx",
    "build_execution_plan",
]

#: builds the relation a task joins against: ``(pred, arity, facts)``.
#: The default builds a fresh relation per call; the plan cache
#: substitutes its cross-round indexed store.
RelationFactory = Callable[[str, int, frozenset], Relation]


def _fresh_relation(pred: str, arity: int, facts: frozenset) -> Relation:
    rel = Relation(pred, arity)
    for f in facts:
        rel.add(f)
    return rel


@dataclass
class WorkUnit:
    """One runnable DAG node: a pure function of its input values."""

    node: int
    kind: str  #: ``"edb"`` | ``"pred"`` | ``"task"``
    label: str
    #: the node's recorded value under the *old* materialization —
    #: diffing against it yields the real changed/unchanged signal
    old_value: frozenset
    run: Callable[["ValueStore"], frozenset]

    def execute(self, values: "ValueStore") -> frozenset:
        """Compute this node's output from its inputs' values."""
        return self.run(values)


class ValueStore:
    """Per-round node values, falling back to old values when skipped.

    A deactivated node is never executed — incremental maintenance
    reuses its old value — so readers fall back to
    ``plan.old_values[node]`` for any node without a computed value.
    The executor guarantees a unit only reads nodes that are already
    *resolved* (executed or deactivated), so the fallback is sound.
    """

    def __init__(self, plan: "ExecutionPlan") -> None:
        self._old = plan.old_values
        self._values: dict[int, frozenset] = {}

    def __getitem__(self, node: int) -> frozenset:
        got = self._values.get(node)
        return self._old[node] if got is None else got

    def set(self, node: int, value: frozenset) -> None:
        """Record a computed value (coordinator thread only)."""
        self._values[node] = value

    def computed(self, node: int) -> bool:
        """Whether ``node`` was actually executed this round."""
        return node in self._values


class RoundCtx:
    """The per-round data every unit closure reads.

    Mutated only between rounds (by :meth:`PlanSkeleton.patch`), never
    while a plan is executing, so worker threads read it without locks.
    """

    __slots__ = ("baseline", "rel", "baseline_edb", "pool")

    def __init__(
        self, rel: RelationFactory, pool: InternPool | None = None
    ) -> None:
        #: predicate → program facts ∪ its facts in the round's new EDB
        #: — the entry state of a stratum-local predicate, and the
        #: value an EDB node publishes
        self.baseline: dict[str, frozenset] = {}
        #: relation factory used for every join input this round
        self.rel: RelationFactory = rel
        #: the exact EDB object the baseline was stamped from; the plan
        #: cache's weighted patching checks it by identity before
        #: updating only the touched predicates
        self.baseline_edb: Database | None = None
        #: intern pool: when set, task joins run the columnar batch
        #: evaluator over each relation's interned mirror
        self.pool: InternPool | None = pool


@dataclass
class ExecutionPlan:
    """Every node of a compiled update as a runnable :class:`WorkUnit`."""

    compiled: CompiledUpdate
    units: list[WorkUnit]
    old_values: list[frozenset]
    #: predicate → node id carrying its final value
    final_nodes: dict[str, int] = field(default_factory=dict)
    #: per-round data shared by the unit closures
    ctx: RoundCtx | None = None
    #: the static wiring this plan was bound from (enables patching)
    skeleton: "PlanSkeleton | None" = None

    def new_store(self) -> ValueStore:
        """A fresh value store for one execution of this plan."""
        return ValueStore(self)

    def materialization(self, values: ValueStore) -> Database:
        """Assemble the full database the executed round produced."""
        out = Database()
        ref = self.compiled.db_new
        for pred, rel in ref.relations.items():
            fresh = out.relation(pred, rel.arity)
            node = self.final_nodes.get(pred)
            if node is not None:
                facts = values[node]
            else:
                # relation never mentioned by the program: carried
                # through from the EDB untouched
                facts = _facts_of(self.compiled.edb_new, pred)
            for fact in facts:
                fresh.add(fact)
        return out

    def execute_serial(self) -> tuple[ValueStore, dict[int, bool]]:
        """Reference execution: run every unit in level order.

        Returns the value store and the real per-node change flags —
        the test oracle for both the concurrent executor and the
        compiler's precomputed activation pattern.
        """
        values = self.new_store()
        diffs: dict[int, bool] = {}
        levels = self.compiled.trace.levels
        for node in np.argsort(levels, kind="stable"):
            unit = self.units[int(node)]
            value = unit.execute(values)
            values.set(unit.node, value)
            diffs[unit.node] = value != unit.old_value
        return values, diffs


def _facts_of(db: Database, pred: str) -> frozenset:
    rel = db.relations.get(pred)
    return frozenset(rel) if rel is not None else frozenset()


@dataclass
class _TaskWiring:
    """Static join wiring of one task node."""

    si: int
    k: int
    ri: int
    pos: int | None
    #: body predicate → feeding node id (None: read ctx.baseline)
    sources: dict[str, int | None]
    dq: str | None
    delta_cur: int | None
    delta_prev: int | None


class PlanSkeleton:
    """Static wiring shared by every round with the same DAG structure.

    Derived from ``(program, node_keys)`` only. Rebinding it to a new
    :class:`CompiledUpdate` with identical ``node_keys`` is sound
    because every per-round quantity lives in the plan's
    :class:`RoundCtx` and ``old_values``.
    """

    def __init__(
        self,
        cu: CompiledUpdate,
        join_orders: dict[int, tuple[int, ...]] | None = None,
        pool: InternPool | None = None,
    ) -> None:
        program = cu.program
        self.program = program
        #: intern pool stamped into every bound plan's RoundCtx; None
        #: keeps the row (dict-substitution) join path
        self.pool = pool
        #: node → input node ids, derived lazily from the wiring (the
        #: process executor ships exactly these values per dispatch)
        self._input_nodes: dict[int, tuple[int, ...]] = {}
        #: proper-rule index → body evaluation order (analyzer hint);
        #: rules without an entry evaluate in textual order
        self.join_orders: dict[int, tuple[int, ...]] = dict(
            join_orders or {}
        )
        self.node_keys = list(cu.node_keys)
        self.rules = program.proper_rules
        depgraph = DependencyGraph(program)
        self.strata = depgraph.stratify()
        self.stratum_of = {
            p: si for si, comp in enumerate(self.strata) for p in comp
        }
        self.edb_set = program.edb_predicates()
        self.n_iters = self._infer_n_iters()

        # program facts are every predicate's baseline state
        fact_sets: dict[str, set] = {}
        for fact_rule in program.facts:
            fact_sets.setdefault(fact_rule.head.predicate, set()).add(
                tuple(t.value for t in fact_rule.head.terms)  # type: ignore[union-attr]
            )
        self.base: dict[str, frozenset] = {
            p: frozenset(s) for p, s in fact_sets.items()
        }

        self.arity_of: dict[str, int] = {}
        for rule in program.rules:
            for atom in [rule.head] + [
                lit.atom for lit in rule.body if lit.atom is not None
            ]:
                self.arity_of.setdefault(atom.predicate, atom.arity)
        for db in (cu.edb_old, cu.edb_new, cu.db_old, cu.db_new):
            for p, rel in db.relations.items():
                self.arity_of.setdefault(p, rel.arity)

        self.key_to_id = {
            key: nid
            for nid, key in enumerate(self.node_keys)
            if key is not None
        }

        # writer tasks per predicate-state node, from the task keys
        writers: dict[tuple[str, int, int], list[int]] = {}
        for nid, key in enumerate(self.node_keys):
            if key is not None and key[0] == "task":
                _, si, k, ri, _pos = key
                head = self.rules[ri].head.predicate
                writers.setdefault((head, si, k), []).append(nid)
        for ws in writers.values():
            ws.sort()
        self.writers = writers

        self.task_wiring: dict[int, _TaskWiring] = {}
        for nid, key in enumerate(self.node_keys):
            if key is None:  # pragma: no cover - compiler keys every node
                raise ValueError(f"node {nid} has no builder key")
            if key[0] == "task":
                self.task_wiring[nid] = self._wire_task(*key[1:])

    # ------------------------------------------------------------------
    def _infer_n_iters(self) -> list[int]:
        """Iterations per stratum, recovered from the node keys."""
        n_iters = [1] * len(self.strata)
        for key in self.node_keys:
            if key is not None and key[0] == "pred":
                _, _p, si, k = key
                n_iters[si] = max(n_iters[si], k + 1)
        return n_iters

    def out_id(self, p: str) -> int:
        """Node carrying ``p``'s final value (mirrors the compiler)."""
        if p in self.edb_set:
            return self.key_to_id[("edb", p)]
        si = self.stratum_of[p]
        return self.key_to_id[("pred", p, si, self.n_iters[si] - 1)]

    def input_nodes(self, nid: int) -> tuple[int, ...]:
        """The node ids whose values ``nid``'s unit closure reads.

        EDB nodes read only the round baseline; predicate-state nodes
        read their predecessor state plus their writer tasks; task nodes
        read their wired sources and Δ-window states. The process
        executor serializes exactly these values into each dispatch.
        """
        deps = self._input_nodes.get(nid)
        if deps is not None:
            return deps
        key = self.node_keys[nid]
        if key[0] == "edb":
            deps = ()
        elif key[0] == "pred":
            _, p, si, k = key
            prev = (
                (self.key_to_id[("pred", p, si, k - 1)],) if k > 0 else ()
            )
            deps = prev + tuple(self.writers.get((p, si, k), ()))
        else:
            w = self.task_wiring[nid]
            seen: list[int] = []
            for src in w.sources.values():
                if src is not None and src not in seen:
                    seen.append(src)
            for extra in (w.delta_cur, w.delta_prev):
                if extra is not None and extra not in seen:
                    seen.append(extra)
            deps = tuple(seen)
        self._input_nodes[nid] = deps
        return deps

    def _wire_task(
        self, si: int, k: int, ri: int, pos: int | None
    ) -> _TaskWiring:
        rule = self.rules[ri]
        stratum_set = set(self.strata[si])

        # where each body predicate's input value comes from: a node id,
        # or the ctx baseline for stratum-local predicates at k == 0
        sources: dict[str, int | None] = {}
        for lit in rule.body:
            if lit.atom is None:
                continue
            q = lit.atom.predicate
            if q in sources:
                continue
            if q in stratum_set and q not in self.edb_set:
                sources[q] = (
                    self.key_to_id[("pred", q, si, k - 1)] if k > 0 else None
                )
            else:
                sources[q] = self.out_id(q)

        if pos is not None:
            dq = rule.body[pos].atom.predicate  # type: ignore[union-attr]
            delta_cur = self.key_to_id[("pred", dq, si, k - 1)]
            delta_prev = (
                self.key_to_id[("pred", dq, si, k - 2)] if k >= 2 else None
            )
        else:
            dq = None
            delta_cur = delta_prev = None

        return _TaskWiring(
            si=si, k=k, ri=ri, pos=pos, sources=sources,
            dq=dq, delta_cur=delta_cur, delta_prev=delta_prev,
        )

    # ------------------------------------------------------------------
    # per-round data
    # ------------------------------------------------------------------
    def _round_baseline(self, edb_new: Database) -> dict[str, frozenset]:
        baseline: dict[str, frozenset] = {}
        for p in self.arity_of:
            baseline[p] = self.base.get(p, frozenset()) | _facts_of(
                edb_new, p
            )
        return baseline

    def _old_value(
        self,
        key: tuple,
        cu: CompiledUpdate,
        states_old: dict[tuple, frozenset],
    ) -> frozenset:
        if key[0] == "edb":
            p = key[1]
            return _facts_of(cu.edb_old, p) | self.base.get(p, frozenset())
        if key[0] == "pred":
            _, p, si, k = key
            ko = min(k, len(cu.eval_old.iterations[si]) - 1)
            old = states_old.get(
                (p, si, ko), states_old.get((p, si, -1))
            )
            return old if old is not None else frozenset()
        _, si, k, ri, pos = key
        rec_old = (
            cu.eval_old.iterations[si][k]
            if k < len(cu.eval_old.iterations[si])
            else {}
        )
        return frozenset(rec_old.get((ri, pos), frozenset()))

    def _final_nodes(self, cu: CompiledUpdate) -> dict[str, int]:
        final_nodes: dict[str, int] = {}
        for p in cu.db_new.relations:
            if p in self.edb_set or p in self.stratum_of:
                final_nodes[p] = self.out_id(p)
        return final_nodes

    # ------------------------------------------------------------------
    # unit construction (closures read ctx, never per-round captures)
    # ------------------------------------------------------------------
    def _make_unit(
        self, nid: int, key: tuple, ctx: RoundCtx
    ) -> WorkUnit:
        if key[0] == "edb":
            p = key[1]

            def run_edb(_values: ValueStore) -> frozenset:
                return ctx.baseline[p]

            return WorkUnit(
                node=nid, kind="edb", label=f"edb:{p}",
                old_value=frozenset(), run=run_edb,
            )

        if key[0] == "pred":
            _, p, si, k = key
            prev_id = (
                self.key_to_id[("pred", p, si, k - 1)] if k > 0 else None
            )
            task_ids = tuple(self.writers.get((p, si, k), ()))

            def run_pred(values: ValueStore) -> frozenset:
                acc = (
                    set(values[prev_id])
                    if prev_id is not None
                    else set(ctx.baseline[p])
                )
                for tid in task_ids:
                    acc |= values[tid]
                return frozenset(acc)

            return WorkUnit(
                node=nid, kind="pred", label=f"{p}@{si}.{k}",
                old_value=frozenset(), run=run_pred,
            )

        wiring = self.task_wiring[nid]
        rule = self.rules[wiring.ri]
        arity_of = self.arity_of
        pos, dq = wiring.pos, wiring.dq
        sources = wiring.sources
        delta_cur, delta_prev = wiring.delta_cur, wiring.delta_prev
        order = self.join_orders.get(wiring.ri)

        def run_task(values: ValueStore) -> frozenset:
            db = Database()
            for q, src in sources.items():
                facts = (
                    values[src] if src is not None else ctx.baseline[q]
                )
                db.relations[q] = ctx.rel(q, arity_of[q], facts)
            pool = ctx.pool
            if pos is None:
                if pool is not None:
                    return frozenset(
                        eval_rule_columnar(rule, db, pool, order=order)
                    )
                return frozenset(eval_rule(rule, db, order=order))
            older = (
                values[delta_prev]
                if delta_prev is not None
                else ctx.baseline[dq]
            )
            delta_facts = values[delta_cur] - older
            if not delta_facts:
                return frozenset()
            delta_rel = _fresh_relation(dq, arity_of[dq], delta_facts)
            if pool is not None:
                return frozenset(
                    eval_rule_columnar(
                        rule, db, pool,
                        delta_overrides={dq: delta_rel}, delta_at=pos,
                        order=order,
                    )
                )
            return frozenset(
                instantiate_head(rule.head, subst)
                for subst in join_body(
                    rule.body, db,
                    delta_overrides={dq: delta_rel}, delta_at=pos,
                    order=order,
                )
            )

        suffix = f".d{pos}" if pos is not None else ""
        return WorkUnit(
            node=nid, kind="task",
            label=f"r{wiring.ri}@{wiring.si}.{wiring.k}{suffix}",
            old_value=frozenset(), run=run_task,
        )

    # ------------------------------------------------------------------
    # bind / patch
    # ------------------------------------------------------------------
    def bind(
        self,
        cu: CompiledUpdate,
        states_old: dict[tuple, frozenset] | None = None,
        relation_factory: RelationFactory | None = None,
    ) -> ExecutionPlan:
        """Build a fresh :class:`ExecutionPlan` for ``cu``.

        ``states_old`` is the cumulative predicate-state table of the
        old evaluation; pass the cached one to avoid recomputing it.
        """
        ctx = RoundCtx(relation_factory or _fresh_relation, pool=self.pool)
        units = [
            self._make_unit(nid, key, ctx)
            for nid, key in enumerate(self.node_keys)
        ]
        plan = ExecutionPlan(
            compiled=cu,
            units=units,
            old_values=[frozenset()] * len(units),
            ctx=ctx,
            skeleton=self,
        )
        self.patch(plan, cu, states_old)
        return plan

    def patch(
        self,
        plan: ExecutionPlan,
        cu: CompiledUpdate,
        states_old: dict[tuple, frozenset] | None = None,
        zdelta: "ZSetDelta | None" = None,
    ) -> ExecutionPlan:
        """Restamp ``plan`` with a new round's data, in place.

        Requires ``cu.node_keys`` to match the skeleton's (same DAG
        structure). The unit closures and wiring are reused verbatim;
        only the :class:`RoundCtx`, old values, and final-node map are
        rewritten. Deterministic: patching for the same ``cu`` twice —
        e.g. when a failed round is retried — yields identical state.

        ``zdelta`` is the round's effective weighted update
        (``edb_old → edb_new``). When the plan's current baseline was
        stamped from exactly ``cu.edb_old`` (object identity — true on
        every plan-cache fast path), only the predicates the delta
        touches are restamped; every other predicate keeps its baseline
        frozenset object, so downstream value-addressed caches see
        unchanged keys without rehashing full relations.
        """
        if cu.node_keys != self.node_keys:
            raise ValueError(
                "compiled update has a different DAG structure than "
                "this skeleton; build a new plan instead of patching"
            )
        if states_old is None:
            states_old = _cumulative_states(
                self.program, cu.eval_old, cu.edb_old
            )
        assert plan.ctx is not None
        if (
            zdelta is not None
            and plan.ctx.baseline_edb is cu.edb_old
            and plan.ctx.baseline.keys() == self.arity_of.keys()
        ):
            baseline = plan.ctx.baseline
            for p in zdelta.touched_predicates():
                if p in baseline:
                    baseline[p] = self.base.get(p, frozenset()) | _facts_of(
                        cu.edb_new, p
                    )
        else:
            plan.ctx.baseline = self._round_baseline(cu.edb_new)
        plan.ctx.baseline_edb = cu.edb_new
        old_values = [
            self._old_value(key, cu, states_old)
            for key in self.node_keys
        ]
        for unit, old in zip(plan.units, old_values):
            unit.old_value = old
        # rebind in place: ValueStore holds a reference to this list
        plan.old_values[:] = old_values
        plan.compiled = cu
        plan.final_nodes = self._final_nodes(cu)
        return plan


def build_execution_plan(
    cu: CompiledUpdate,
    relation_factory: RelationFactory | None = None,
    join_orders: dict[int, tuple[int, ...]] | None = None,
    pool: InternPool | None = None,
) -> ExecutionPlan:
    """Rebuild every node of ``cu`` as a runnable unit of work.

    ``join_orders`` maps proper-rule indexes of ``cu.program`` to body
    evaluation orders (the static analyzer's cartesian-join hints).
    ``pool`` switches every task unit to the columnar batch joins.
    """
    return PlanSkeleton(cu, join_orders=join_orders, pool=pool).bind(
        cu, relation_factory=relation_factory
    )
