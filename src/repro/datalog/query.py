"""Query interface: match goals against a materialized database.

The paper's setting is *query-driven*: "queries in Datalog-based systems
are answered by checking them against the stored dataset of all facts
that can be derived" — incremental maintenance exists so these lookups
stay cheap after updates. This module provides that lookup surface:

>>> answers = query(db, "path(1, X), X > 2")
>>> sorted(a["X"] for a in answers)
[3, 4]

Goals are comma-separated body literals (same syntax as rule bodies,
including negation and comparisons) evaluated against the materialized
relations — no rule firing happens at query time.
"""

from __future__ import annotations

from typing import Iterator

from .ast import Literal
from .database import Database
from .parser import ParseError, _Parser
from .unify import join_body

__all__ = ["parse_goal", "query", "query_facts"]


def parse_goal(text: str) -> tuple[Literal, ...]:
    """Parse a comma-separated conjunction of body literals."""
    p = _Parser(text.rstrip().rstrip("."))
    literals = [p.parse_literal()]
    while p.at("PUNCT", ","):
        p.next()
        literals.append(p.parse_literal())
    if p.peek() is not None:
        raise ParseError(f"trailing input after goal: {p.peek()!r}")
    goal = tuple(literals)
    _check_goal_safety(goal)
    return goal


def _check_goal_safety(goal: tuple[Literal, ...]) -> None:
    bound = {
        v.name
        for lit in goal
        if not lit.negated and lit.atom is not None
        for v in lit.variables()
    }
    for lit in goal:
        if lit.negated or lit.is_comparison:
            for v in lit.variables():
                if v.name not in bound:
                    raise ParseError(
                        f"unsafe goal: variable {v.name} in {lit!r} is not "
                        "bound by a positive literal"
                    )


def query(db: Database, goal: str | tuple[Literal, ...]) -> Iterator[dict]:
    """All substitutions satisfying ``goal`` against ``db``.

    Yields plain dicts mapping variable names to values; a ground goal
    yields one empty dict if it holds and nothing otherwise.
    """
    literals = parse_goal(goal) if isinstance(goal, str) else goal
    seen: set[tuple] = set()
    names = sorted(
        {v.name for lit in literals for v in lit.variables()}
    )
    for subst in join_body(literals, db):
        key = tuple(subst.get(n) for n in names)
        if key in seen:
            continue
        seen.add(key)
        yield {n: subst[n] for n in names if n in subst}


def query_facts(db: Database, goal: str) -> list[dict]:
    """Eager, list-returning convenience wrapper over :func:`query`."""
    return list(query(db, goal))
