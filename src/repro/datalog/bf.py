"""Backward/Forward maintenance: delete only what is truly dead.

DRed (the :class:`~repro.datalog.incremental.IncrementalEngine`
default) over-deletes everything *possibly* affected by a retraction
and then re-derives the survivors — cheap bookkeeping, but on dense
derivation graphs most of the over-deleted facts come straight back,
and every one of them is a delete followed by a re-insert.

The Backward/Forward algorithm (Motik, Nenov, Piro, Horrocks —
"Optimised Maintenance of Datalog Materialisations", PAPERS.md) flips
the order: propagate the retraction **forward** only to collect
*candidates* — facts with at least one derivation through a deleted
fact — without touching the database, then check **backward** which
candidates still have an alternative derivation from the surviving
facts, and finally delete the unsupported remainder in one step. A
fact with alternative support is never deleted at all, so the net
:class:`~repro.datalog.zset.ZSetDelta` this engine emits is identical
to DRed's but the database churn (and the index maintenance it drags
along) is bounded by the *truly* dead facts.

Implemented as a strategy override of
:meth:`IncrementalEngine._delete_phase`: insertion propagation,
stratification, and the recompute-and-diff path for negation and
aggregation are shared with the base engine, so the two strategies are
interchangeable round-for-round — which is exactly what the runtime's
strategy switch and the differential tests rely on.
"""

from __future__ import annotations

from .ast import Program
from .database import Database, Relation
from .incremental import IncrementalEngine
from .unify import instantiate_head, join_body
from .zset import ZSetDelta

__all__ = [
    "BackwardForwardEngine",
    "MAINTENANCE_STRATEGIES",
    "make_engine",
]


class BackwardForwardEngine(IncrementalEngine):
    """DRed's sibling: candidate collection, backward proof, one delete."""

    #: strategy tag reported by the runtime and benchmarks
    strategy = "bf"

    def _delete_phase(
        self, si, stratum_set, rules, net: ZSetDelta, trace
    ) -> None:
        candidates = self._collect_candidates(si, stratum_set, rules, net, trace)
        if not candidates:
            return
        supported = self._verify_candidates(rules, candidates)
        # the one-shot delete has no per-rule attribution: record the
        # whole batch under rule index -1
        n_deleted = 0
        for pred, facts in candidates.items():
            rel = self.db.relations.get(pred)
            if rel is None:
                continue
            keep = supported.get(pred, set())
            for fact in facts:
                if fact in keep:
                    continue
                if rel.discard(fact):
                    net.delete(pred, fact)
                    n_deleted += 1
        trace.record("bf_delete", si, 0, -1, n_deleted)

    # ------------------------------------------------------------------
    def _collect_candidates(
        self, si, stratum_set, rules, net: ZSetDelta, trace
    ) -> dict[str, set[tuple]]:
        """Forward pass: facts with ≥1 derivation through a deletion.

        Joins run against the pre-deletion view (current database plus
        lower-strata/EDB retractions) exactly like DRed's over-delete,
        but nothing is removed — victims only accumulate as candidates
        and feed the next wave.
        """
        view = self._old_view(net)
        candidates: dict[str, set[tuple]] = {}
        # lower-strata and EDB deletions seed the wave
        wave = net.negative()
        iteration = 0
        while wave:
            next_wave: dict[str, set[tuple]] = {}
            for ri, rule in rules:
                n_found = 0
                for pos, lit in enumerate(rule.body):
                    if (
                        lit.atom is None
                        or lit.negated
                        or lit.atom.predicate not in wave
                    ):
                        continue
                    over = Relation(lit.atom.predicate, lit.atom.arity)
                    for f in wave[lit.atom.predicate]:
                        over.add(f)
                    head = rule.head.predicate
                    rel = self.db.relations.get(head)
                    if rel is None:
                        continue
                    seen = candidates.setdefault(head, set())
                    for subst in join_body(
                        rule.body,
                        view,
                        delta_overrides={lit.atom.predicate: over},
                        delta_at=pos,
                    ):
                        fact = instantiate_head(rule.head, subst)
                        if fact in rel and fact not in seen:
                            seen.add(fact)
                            next_wave.setdefault(head, set()).add(fact)
                            n_found += 1
                trace.record("bf_candidates", si, iteration, ri, n_found)
            wave = {p: s for p, s in next_wave.items() if p in stratum_set}
            iteration += 1
        return {p: s for p, s in candidates.items() if s}

    def _verify_candidates(
        self, rules, candidates: dict[str, set[tuple]]
    ) -> dict[str, set[tuple]]:
        """Backward pass: candidates with an alternative derivation.

        A candidate is *supported* iff some rule derives it from facts
        that are either non-candidates (they survive unconditionally —
        the database still holds them and deletions from lower strata
        are already applied) or candidates already proven supported.
        Computed as a least fixpoint over a masked view, so circular
        support among candidates does not count — matching what DRed's
        delete-then-rederive would conclude.
        """
        masked = Database(dict(self.db.relations))
        for pred, facts in candidates.items():
            rel = self.db.relations.get(pred)
            if rel is None:
                continue
            trimmed = Relation(pred, rel.arity)
            for f in rel:
                if f not in facts:
                    trimmed.add(f)
            masked.relations[pred] = trimmed
        supported: dict[str, set[tuple]] = {}
        changed = True
        while changed:
            changed = False
            for _ri, rule in rules:
                head = rule.head.predicate
                pending = candidates.get(head)
                if not pending:
                    continue
                got = supported.get(head, set())
                if len(got) == len(pending):
                    continue
                proven = [
                    fact
                    for fact in (
                        instantiate_head(rule.head, s)
                        for s in join_body(rule.body, masked)
                    )
                    if fact in pending and fact not in got
                ]
                for fact in proven:
                    got.add(fact)
                    masked.relations[head].add(fact)
                    supported[head] = got
                    changed = True
        return supported


#: registered maintenance strategies → engine class
MAINTENANCE_STRATEGIES: dict[str, type[IncrementalEngine]] = {
    "dred": IncrementalEngine,
    "bf": BackwardForwardEngine,
}


def make_engine(
    strategy: str, program: Program, edb: Database | None = None
) -> IncrementalEngine:
    """Build a maintenance engine by strategy name.

    ``"dred"`` (delete/re-derive), ``"bf"`` (Backward/Forward), and
    ``"counting"`` (Gupta–Mumick–Subrahmanian derivation counting, via
    :class:`~repro.datalog.counting.CountingEngine` — non-recursive,
    aggregate-free programs only) all maintain the same materialization;
    they differ in how much intermediate churn the deletion path incurs.
    """
    if strategy == "counting":
        from .counting import CountingEngine

        return CountingEngine(program, edb)
    try:
        cls = MAINTENANCE_STRATEGIES[strategy]
    except KeyError:
        raise KeyError(
            f"unknown maintenance strategy {strategy!r}; choose from "
            f"{sorted(MAINTENANCE_STRATEGIES) + ['counting']}"
        ) from None
    return cls(program, edb)
