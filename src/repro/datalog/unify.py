"""Substitutions, matching, and rule-body join evaluation.

The evaluator works with plain dict substitutions ``{var name: value}``.
:func:`join_body` enumerates all substitutions satisfying a rule body
against given relations, indexing each atom on its already-bound
positions — the standard bottom-up nested-loop join with hash lookup.
"""

from __future__ import annotations

from typing import Callable, Iterator, Mapping

from .ast import Atom, Comparison, Constant, Literal, Variable
from .database import Database, Relation

__all__ = [
    "Subst",
    "match_atom",
    "apply_subst",
    "eval_comparison",
    "join_body",
    "instantiate_head",
    "eval_rule",
]

Subst = dict[str, object]


def match_atom(atom: Atom, fact: tuple, subst: Subst) -> Subst | None:
    """Extend ``subst`` to match ``atom`` against a ground ``fact``.

    Returns the extended substitution, or None on mismatch. The input
    dict is not mutated.
    """
    out = None  # copy lazily
    for term, value in zip(atom.terms, fact):
        if isinstance(term, Constant):
            if term.value != value:
                return None
        else:
            bound = (out or subst).get(term.name, _MISSING)
            if bound is _MISSING:
                if out is None:
                    out = dict(subst)
                out[term.name] = value
            elif bound != value:
                return None
    return out if out is not None else dict(subst)


_MISSING = object()


def apply_subst(atom: Atom, subst: Mapping[str, object]) -> tuple:
    """Ground ``atom``'s terms under ``subst`` (must bind all variables)."""
    out = []
    for t in atom.terms:
        if isinstance(t, Constant):
            out.append(t.value)
        else:
            v = subst.get(t.name, _MISSING)
            if v is _MISSING:
                raise KeyError(f"unbound variable {t.name} in {atom!r}")
            out.append(v)
    return tuple(out)


_CMP: dict[str, Callable[[object, object], bool]] = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def eval_comparison(cmp: Comparison, subst: Mapping[str, object]) -> bool:
    """Evaluate a ground comparison under ``subst``."""

    def val(t):
        if isinstance(t, Constant):
            return t.value
        return subst[t.name]

    return _CMP[cmp.op](val(cmp.left), val(cmp.right))


_ARITH: dict[str, Callable[[object, object], object]] = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
}


def eval_assignment(assign, subst: Mapping[str, object]) -> object:
    """Value of an assignment's right-hand side under ``subst``."""

    def val(t):
        if isinstance(t, Constant):
            return t.value
        return subst[t.name]

    if assign.op is None:
        return val(assign.left)
    return _ARITH[assign.op](val(assign.left), val(assign.right))


def _bound_positions(atom: Atom, subst: Subst) -> dict[int, object]:
    bound: dict[int, object] = {}
    for i, t in enumerate(atom.terms):
        if isinstance(t, Constant):
            bound[i] = t.value
        elif t.name in subst:
            bound[i] = subst[t.name]
    return bound


def join_body(
    body: tuple[Literal, ...],
    db: Database,
    subst: Subst | None = None,
    delta_overrides: Mapping[str, Relation] | None = None,
    delta_at: int | None = None,
    order: tuple[int, ...] | None = None,
) -> Iterator[Subst]:
    """Enumerate substitutions satisfying ``body`` left to right.

    ``delta_overrides``/``delta_at``: when evaluating semi-naive rule
    variants, the literal at index ``delta_at`` reads from the override
    relation (the Δ of the previous iteration) instead of the full one.
    Negated atoms and comparisons filter; both are guaranteed ground by
    rule safety once the positive atoms to their left and right are
    processed — we defer them until all their variables are bound.

    ``order`` is an optional permutation of body indices to evaluate in
    instead of textual order (a join-order hint from the static
    analyzer). It is semantics-preserving: filters and assignments are
    deferred until evaluable regardless of position, and ``delta_at``
    still names the *original* index of the Δ-restricted literal.
    """
    subst = dict(subst or {})
    if order is None:
        seq: tuple[int, ...] = tuple(range(len(body)))
    else:
        if sorted(order) != list(range(len(body))):
            raise ValueError(
                f"order {order!r} is not a permutation of body indices"
            )
        seq = tuple(order)

    def rec(i: int, s: Subst, deferred: list[Literal]) -> Iterator[Subst]:
        # fire any deferred filters/assignments that became evaluable;
        # assignments bind variables, which may unlock further items
        work = list(deferred)
        progressed = True
        while progressed:
            progressed = False
            still: list[Literal] = []
            for lit in work:
                if lit.is_assignment:
                    a = lit.assignment
                    if all(v.name in s for v in a.inputs()):
                        val = eval_assignment(a, s)
                        bound = s.get(a.target.name, _MISSING)
                        if bound is _MISSING:
                            s = {**s, a.target.name: val}
                        elif bound != val:
                            return
                        progressed = True
                    else:
                        still.append(lit)
                elif all(v.name in s for v in lit.variables()):
                    if lit.is_comparison:
                        if not eval_comparison(lit.comparison, s):
                            return
                    else:  # negated ground atom
                        if db.has_fact(
                            lit.atom.predicate, apply_subst(lit.atom, s)
                        ):
                            return
                    progressed = True
                else:
                    still.append(lit)
            work = still
        still = work
        if i == len(body):
            if still:  # unsafe rule slipped through — should not happen
                raise RuntimeError(f"unresolved filters {still!r}")
            yield s
            return
        idx = seq[i]
        lit = body[idx]
        if lit.is_comparison or lit.is_assignment or lit.negated:
            yield from rec(i + 1, s, still + [lit])
            return
        atom = lit.atom
        if delta_overrides is not None and idx == delta_at:
            rel: Relation | None = delta_overrides.get(atom.predicate)
        else:
            rel = db.relations.get(atom.predicate)
        if rel is None:
            return
        bound = _bound_positions(atom, s)
        for fact in rel.match(bound):
            s2 = match_atom(atom, fact, s)
            if s2 is not None:
                yield from rec(i + 1, s2, still)

    yield from rec(0, subst, [])


def instantiate_head(rule_head: Atom, subst: Subst) -> tuple:
    """Ground the head under a complete body substitution."""
    return apply_subst(rule_head, subst)


def eval_rule(
    rule,
    db: Database,
    delta_overrides: Mapping[str, Relation] | None = None,
    delta_at: int | None = None,
    order: tuple[int, ...] | None = None,
) -> set:
    """All facts one rule derives from ``db`` (aggregate-aware).

    For a plain rule this is the set of instantiated heads over the
    body join. For an aggregate head ``p(G…, op(V))`` the body's
    substitutions are grouped by the plain head terms and the ``op``
    folds the multiset of ``V`` bindings per group (``count`` counts
    substitutions; ``sum``/``min``/``max`` fold the values). Groups are
    only emitted when non-empty, so aggregates over empty bodies derive
    nothing (SQL's ``GROUP BY`` convention).
    """
    from .ast import Aggregate

    if not rule.has_aggregate:
        return {
            instantiate_head(rule.head, s)
            for s in join_body(
                rule.body, db,
                delta_overrides=delta_overrides, delta_at=delta_at,
                order=order,
            )
        }

    terms = rule.head.terms
    agg = next(t for t in terms if isinstance(t, Aggregate))
    groups: dict[tuple, list] = {}
    for s in join_body(
        rule.body, db, delta_overrides=delta_overrides, delta_at=delta_at,
        order=order,
    ):
        key = tuple(
            t.value if isinstance(t, Constant) else s[t.name]
            for t in terms
            if not isinstance(t, Aggregate)
        )
        groups.setdefault(key, []).append(s[agg.var.name])

    out = set()
    for key, values in groups.items():
        if agg.op == "count":
            result: object = len(values)
        elif agg.op == "sum":
            result = sum(values)
        elif agg.op == "min":
            result = min(values)
        else:  # max
            result = max(values)
        fact = []
        ki = iter(key)
        for t in terms:
            fact.append(result if isinstance(t, Aggregate) else next(ki))
        out.add(tuple(fact))
    return out
