"""Compile a Datalog update into a computation-DAG job trace.

This closes the loop the paper describes: *"The materialization of the
recursive rules of a Datalog program is represented as a directed
acyclic graph"* whose nodes are tasks and predicate nodes (Figure 1),
and an update to the base data activates some of them.

Construction
------------
Two from-scratch semi-naive materializations are recorded — one on the
old EDB, one on the updated EDB. Their union unrolls the program's
dataflow into the static DAG ``G``:

* ``("edb", p)`` — a source node per base predicate;
* ``("task", si, k, ri, pos)`` — the rule instance evaluated at
  iteration ``k`` of stratum ``si`` (``pos`` is the Δ-restricted body
  position, None at iteration 0);
* ``("pred", p, si, k)`` — the accumulated state of predicate ``p``
  after iteration ``k`` — the "predicate nodes used to collect inputs
  and outputs" of Figure 1 (zero work, ``is_task=False``).

Edges wire each task to the predicate states it reads and writes, with
pass-through edges chaining successive states of the same predicate.

Activation
----------
A node's realized output *changed* iff the recorded value differs
between the two materializations: for an EDB node, the update touches
it; for a task, its join produced a different fact set (the recorded
output is a pure function of the task's inputs); for a predicate-state
node, the accumulated relation differs. Every out-edge of a changed
node carries a change flag, and the updated EDB nodes are the initial
tasks — :func:`repro.tasks.activation.propagate_changes` then reveals
exactly the re-execution the paper's model prescribes, including
activated tasks whose output turns out unchanged (they run but stop
the cascade).

Task work is ``work_per_derivation × (1 + |join output|)``, so heavy
joins dominate the schedule the way they dominate real maintenance.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from ..dag.builder import DagBuilder
from ..tasks.model import ExecutionModel
from ..tasks.trace import JobTrace
from .ast import Program
from .database import Database
from .depgraph import DependencyGraph
from .incremental import Delta
from .zset import apply_zdelta, effective_zdelta
from .seminaive import EvaluationTrace, _ensure_relations, seminaive_evaluate

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..verify.program import ProgramAnalysis

__all__ = [
    "compile_update",
    "build_compiled_update",
    "CompiledUpdate",
    "live_edb_predicates",
    "with_program_schema",
]


def live_edb_predicates(edb_old: Database, edb_new: Database) -> set[str]:
    """Predicates holding at least one fact on either side of the round.

    The input to :meth:`ProgramAnalysis.prunable_rules` — a rule is only
    prunable when it cannot fire against *both* EDB snapshots, since the
    compiled round materializes both sides.
    """
    return {
        p
        for db in (edb_old, edb_new)
        for p, rel in db.relations.items()
        if len(rel)
    }


def with_program_schema(db: Database, program: Program) -> Database:
    """``db`` with an (empty) relation for every program predicate.

    Pruned compiles evaluate a program that no longer mentions some
    predicates; mirroring the evaluator's ``_ensure_relations`` against
    the *full* program on the EDB keeps the materialization's relation
    keys — and the plan cache's schema fingerprint — byte-identical to
    the unpruned path. Returns ``db`` itself when nothing is missing,
    so steady-state rounds keep EDB identity (and the cache's fast
    equality path)."""
    mentioned = program.predicates()
    if mentioned <= set(db.relations):
        return db
    out = db.copy()
    _ensure_relations(program, out)
    return out


def _usable_analysis(
    program: Program, analysis: "ProgramAnalysis | None"
) -> "ProgramAnalysis | None":
    """Guard against an analysis computed for a different program."""
    if analysis is None:
        return None
    if analysis.program is program or repr(analysis.program) == repr(
        program
    ):
        return analysis
    return None


@dataclass
class CompiledUpdate:
    """The job trace plus the evaluation artifacts behind it.

    ``node_keys[i]`` is the builder key of DAG node ``i`` — an
    ``("edb", p)``, ``("task", si, k, ri, pos)``, or ``("pred", p, si,
    k)`` tuple. Together with ``program`` and the two EDB snapshots it
    lets :mod:`repro.datalog.units` rebuild every node as a *runnable*
    unit of work, so a compiled round can be executed for real instead
    of simulated.
    """

    trace: JobTrace
    db_old: Database
    db_new: Database
    eval_old: EvaluationTrace
    eval_new: EvaluationTrace
    program: Program
    edb_old: Database
    edb_new: Database
    node_keys: list


def _cumulative_states(
    program: Program,
    ev: EvaluationTrace,
    edb: Database,
) -> dict[tuple, frozenset]:
    """State of each predicate after each (stratum, iteration).

    Key ``(p, si, k)`` → frozen set of facts. Iteration −1 denotes the
    state a stratum starts from (facts from earlier strata / EDB).
    """
    rules = program.proper_rules
    current: dict[str, set] = {
        p: set(rel) for p, rel in edb.relations.items()
    }
    for fact_rule in program.facts:
        current.setdefault(fact_rule.head.predicate, set()).add(
            tuple(t.value for t in fact_rule.head.terms)  # type: ignore[union-attr]
        )
    states: dict[tuple, frozenset] = {}
    for si, stratum in enumerate(ev.strata):
        for p in stratum:
            states[(p, si, -1)] = frozenset(current.get(p, set()))
        for k, rec in enumerate(ev.iterations[si]):
            for (ri, _pos), produced in rec.items():
                head = rules[ri].head.predicate
                current.setdefault(head, set()).update(produced)
            for p in stratum:
                states[(p, si, k)] = frozenset(current.get(p, set()))
    return states


def compile_update(
    program: Program,
    edb_old: Database,
    delta: Delta,
    work_per_derivation: float = 1e-3,
    name: str = "datalog-update",
    analysis: "ProgramAnalysis | None" = None,
) -> CompiledUpdate:
    """Compile ``(program, edb_old, delta)`` into a schedulable trace.

    When ``analysis`` (a :class:`~repro.verify.program.ProgramAnalysis`
    of ``program``) is supplied, rules the analyzer proves can never
    fire against either EDB snapshot are pruned before DAG
    construction. Pruning is materialization-preserving: both snapshots
    are augmented with the full program's schema first, so the derived
    databases stay byte-identical to the unpruned compile.
    """
    for pred in delta.touched_predicates():
        if pred in program.idb_predicates():
            raise ValueError(f"update targets derived predicate {pred!r}")

    # clamp the submitted delta to its effective weights: redundant ops
    # (inserting a present fact, deleting an absent one) and coalesced
    # insert/retract pairs cancel here, so a self-cancelling delta
    # compiles exactly like an empty one — same touched set, same live
    # predicates, same dead-rule prune set
    zdelta = effective_zdelta(edb_old, delta)
    edb_new = apply_zdelta(edb_old, zdelta)
    run_program = program
    touched = zdelta.touched_predicates()
    analysis = _usable_analysis(program, analysis)
    if analysis is not None:
        dead = analysis.prunable_rules(
            live_edb_predicates(edb_old, edb_new)
        )
        if dead:
            run_program = Program(
                tuple(
                    r
                    for i, r in enumerate(program.rules)
                    if i not in dead
                )
            )
            edb_old = with_program_schema(edb_old, program)
            edb_new = with_program_schema(edb_new, program)
            # a delta may touch a predicate only dead rules read; the
            # pruned DAG has no node for it (the augmented EDB still
            # carries its facts through the materialization)
            touched = touched & run_program.edb_predicates()
    db_old, ev_old = seminaive_evaluate(run_program, edb_old, record=True)
    db_new, ev_new = seminaive_evaluate(run_program, edb_new, record=True)
    return build_compiled_update(
        run_program,
        edb_old,
        edb_new,
        db_old,
        db_new,
        ev_old,
        ev_new,
        touched=touched,
        work_per_derivation=work_per_derivation,
        name=name,
    )


def build_compiled_update(
    program: Program,
    edb_old: Database,
    edb_new: Database,
    db_old: Database,
    db_new: Database,
    ev_old: EvaluationTrace,
    ev_new: EvaluationTrace,
    touched: set[str],
    work_per_derivation: float = 1e-3,
    name: str = "datalog-update",
    states_old: dict[tuple, frozenset] | None = None,
    states_new: dict[tuple, frozenset] | None = None,
) -> CompiledUpdate:
    """Unroll two recorded materializations into a schedulable trace.

    The back half of :func:`compile_update`, exposed separately so the
    plan cache — which reuses the previous round's *new* side as this
    round's *old* side instead of re-evaluating it — builds its traces
    through the exact same code path. ``states_old``/``states_new``
    accept precomputed :func:`_cumulative_states` tables (the cache
    carries them across rounds); when omitted they are computed here.
    """
    if ev_old.strata != ev_new.strata:  # pragma: no cover - depgraph is static
        raise AssertionError("stratification must not depend on the data")

    depgraph = DependencyGraph(program)
    strata = depgraph.stratify()
    rules = program.proper_rules
    recursive = depgraph.recursive_predicates()
    if states_old is None:
        states_old = _cumulative_states(program, ev_old, edb_old)
    if states_new is None:
        states_new = _cumulative_states(program, ev_new, edb_new)

    stratum_of: dict[str, int] = {}
    for si, comp in enumerate(strata):
        for p in comp:
            stratum_of[p] = si

    b = DagBuilder()
    edb_preds = sorted(program.edb_predicates())
    for p in edb_preds:
        b.node(("edb", p), f"edb:{p}")

    n_iters = [
        max(len(ev_old.iterations[si]), len(ev_new.iterations[si]))
        for si in range(len(strata))
    ]

    edb_set = set(edb_preds)

    def out_node(p: str) -> int:
        """The node carrying ``p``'s final value for later strata."""
        if p in edb_set:
            return b.node(("edb", p), f"edb:{p}")
        si = stratum_of[p]
        last = n_iters[si] - 1
        return b.node(("pred", p, si, last), f"{p}@{si}.{last}")

    changed: dict[int, bool] = {}

    def mark(node_id: int, is_changed: bool) -> None:
        changed[node_id] = changed.get(node_id, False) or is_changed

    # EDB nodes change iff their relation actually changed (deleting an
    # absent fact, or re-inserting a present one, changes nothing)
    for p in edb_preds:
        old_rel = edb_old.relations.get(p)
        new_rel = edb_new.relations.get(p)
        old_facts = set(old_rel) if old_rel is not None else set()
        new_facts = set(new_rel) if new_rel is not None else set()
        mark(b.node(("edb", p)), old_facts != new_facts)

    work: dict[int, float] = {}
    task_nodes: set[int] = set()

    for si, stratum in enumerate(strata):
        stratum_set = set(stratum)
        stratum_rules = [
            (ri, r) for ri, r in enumerate(rules)
            if r.head.predicate in stratum_set
        ]
        for k in range(n_iters[si]):
            rec_old = (
                ev_old.iterations[si][k]
                if k < len(ev_old.iterations[si])
                else {}
            )
            rec_new = (
                ev_new.iterations[si][k]
                if k < len(ev_new.iterations[si])
                else {}
            )
            # predicate-state nodes after iteration k, with pass-through
            # (EDB predicates keep their single source node instead)
            for p in stratum:
                if p in edb_set:
                    continue
                node = b.node(("pred", p, si, k), f"{p}@{si}.{k}")
                # past a materialization's fixpoint, state stays at its last
                ko = min(k, len(ev_old.iterations[si]) - 1)
                kn = min(k, len(ev_new.iterations[si]) - 1)
                old = states_old.get((p, si, ko), states_old.get((p, si, -1)))
                new = states_new.get((p, si, kn), states_new.get((p, si, -1)))
                mark(node, old != new)
                if k > 0:
                    b.add_edge(b.node(("pred", p, si, k - 1)), node)

            # task nodes
            keys = set(rec_old) | set(rec_new)
            if k == 0:
                keys |= {(ri, None) for ri, _ in stratum_rules}
            else:
                for ri, rule in stratum_rules:
                    for pos, lit in enumerate(rule.body):
                        if (
                            lit.atom is not None
                            and not lit.negated
                            and lit.atom.predicate in stratum_set
                            and lit.atom.predicate in recursive
                        ):
                            keys.add((ri, pos))
            for ri, pos in sorted(
                keys, key=lambda t: (t[0], -1 if t[1] is None else t[1])
            ):
                rule = rules[ri]
                tnode = b.node(
                    ("task", si, k, ri, pos), f"r{ri}@{si}.{k}" +
                    (f".d{pos}" if pos is not None else ""),
                )
                task_nodes.add(tnode)
                out_old = frozenset(rec_old.get((ri, pos), frozenset()))
                out_new = frozenset(rec_new.get((ri, pos), frozenset()))
                mark(tnode, out_old != out_new)
                work[tnode] = work_per_derivation * (
                    1 + max(len(out_old), len(out_new))
                )
                # inputs
                for lit in rule.body:
                    if lit.atom is None:
                        continue
                    q = lit.atom.predicate
                    if q in stratum_set and q not in edb_set:
                        if k > 0:
                            b.add_edge(b.node(("pred", q, si, k - 1)), tnode)
                        # at k == 0 a stratum-local predicate holds only
                        # program facts — no dataflow node feeds it
                    else:
                        b.add_edge(out_node(q), tnode)
                # output
                b.add_edge(tnode, b.node(("pred", rule.head.predicate, si, k)))

    dag = b.build()
    n = dag.n_nodes
    work_arr = np.zeros(n, dtype=np.float64)
    is_task = np.zeros(n, dtype=bool)
    for t in task_nodes:
        work_arr[t] = work.get(t, work_per_derivation)
        is_task[t] = True

    changed_arr = np.zeros(n, dtype=bool)
    for nid, flag in changed.items():
        changed_arr[nid] = flag
    changed_edges = changed_arr[dag.edge_array()[:, 0]]

    initial = np.array(
        sorted(b.id_of(("edb", p)) for p in touched), dtype=np.int64
    )
    models = np.full(n, ExecutionModel.SEQUENTIAL, dtype=np.int8)

    trace = JobTrace(
        dag=dag,
        work=work_arr,
        span=work_arr.copy(),
        models=models,
        is_task=is_task,
        initial_tasks=initial,
        changed_edges=changed_edges,
        name=name,
        metadata={
            "generator": "datalog.compile_update",
            "n_rules": len(rules),
            "n_strata": len(strata),
            "work_per_derivation": work_per_derivation,
        },
    )
    return CompiledUpdate(
        trace=trace,
        db_old=db_old,
        db_new=db_new,
        eval_old=ev_old,
        eval_new=ev_new,
        program=program,
        edb_old=edb_old,
        edb_new=edb_new,
        node_keys=b.keys(),
    )
