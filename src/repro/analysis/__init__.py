"""Reporting helpers: table rendering and paper-vs-measured comparisons."""

from .compare import ShapeComparison, compare_pair, ratio
from .tables import format_seconds, render_table

__all__ = [
    "render_table",
    "format_seconds",
    "ShapeComparison",
    "compare_pair",
    "ratio",
]
