"""Paper-vs-measured comparison helpers.

The reproduction targets *shape*, not absolute wall-clock: who wins, by
roughly what factor, and where crossovers fall. These helpers compute
those shape quantities so benches and EXPERIMENTS.md report them
uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ShapeComparison", "compare_pair", "ratio"]


def ratio(a: float, b: float) -> float:
    """``a / b`` guarded against zero (returns inf)."""
    if b == 0:
        return float("inf") if a > 0 else 1.0
    return a / b


@dataclass(frozen=True)
class ShapeComparison:
    """Did the measured A-vs-B relationship match the paper's?"""

    quantity: str
    paper_a: float
    paper_b: float
    measured_a: float
    measured_b: float

    @property
    def paper_ratio(self) -> float:
        """A/B ratio as published."""
        return ratio(self.paper_a, self.paper_b)

    @property
    def measured_ratio(self) -> float:
        """A/B ratio as measured here."""
        return ratio(self.measured_a, self.measured_b)

    @property
    def same_winner(self) -> bool:
        """Does the same side win (ties within 10% count as ties)?"""

        def sign(r: float) -> int:
            if r > 1.1:
                return 1
            if r < 1 / 1.1:
                return -1
            return 0

        return sign(self.paper_ratio) == sign(self.measured_ratio)

    def factor_agreement(self) -> float:
        """How close the measured ratio is to the paper's (1.0 = exact).

        Computed in log space: ``exp(-|ln(measured/paper)|)``; 0.5 means
        off by 2× in either direction.
        """
        import math

        pr, mr = self.paper_ratio, self.measured_ratio
        if pr <= 0 or mr <= 0 or pr == float("inf") or mr == float("inf"):
            return 0.0
        return math.exp(-abs(math.log(mr / pr)))

    def describe(self) -> str:
        """One-line textual comparison."""
        return (
            f"{self.quantity}: paper ratio {self.paper_ratio:.2f}, "
            f"measured {self.measured_ratio:.2f} "
            f"({'same winner' if self.same_winner else 'WINNER FLIPPED'})"
        )


def compare_pair(
    quantity: str,
    paper: tuple[float, float],
    measured: tuple[float, float],
) -> ShapeComparison:
    """Build a :class:`ShapeComparison` from (A, B) value pairs."""
    return ShapeComparison(
        quantity=quantity,
        paper_a=paper[0],
        paper_b=paper[1],
        measured_a=measured[0],
        measured_b=measured[1],
    )
