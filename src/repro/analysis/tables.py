"""ASCII table rendering for benches and EXPERIMENTS.md.

Deliberately dependency-free: benches print tables with the same rows
and columns the paper reports, and the renderer keeps them legible in a
terminal or a Markdown code block.
"""

from __future__ import annotations

from typing import Any, Sequence

__all__ = ["render_table", "format_seconds"]


def format_seconds(x: float | None) -> str:
    """Human-scale seconds: 9736 → '9736 s', 0.0107 → '10.7 ms'."""
    if x is None:
        return "—"
    if x == 0:
        return "0 s"
    if x >= 100:
        return f"{x:,.0f} s"
    if x >= 1:
        return f"{x:.2f} s"
    if x >= 1e-3:
        return f"{x * 1e3:.1f} ms"
    if x >= 1e-6:
        return f"{x * 1e6:.1f} µs"
    return f"{x * 1e9:.1f} ns"


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[Any]],
    title: str | None = None,
) -> str:
    """Monospace table with a header rule; values are str()-ed."""
    cells = [[str(h) for h in headers]] + [
        [str(c) for c in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(row, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt(cells[0]))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(r) for r in cells[1:])
    return "\n".join(lines)
