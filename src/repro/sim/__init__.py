"""Discrete-event scheduling simulator with overhead/memory accounting."""

from .batch import ComparisonGrid, compare
from .engine import InvalidDispatchError, SchedulerStallError, simulate
from .faults import (
    AttemptOutcome,
    DeadlineExceededError,
    FaultError,
    FaultEvent,
    FaultInjector,
    FaultLog,
    FaultPlan,
    NoProgressError,
    TaskFailedPermanentlyError,
)
from .overhead import MemoryStats, OverheadModel
from .result import DispatchRecord, SimulationResult
from .timeline import (
    LevelEnvelope,
    average_utilization,
    busy_profile,
    idle_gaps,
    level_envelopes,
    render_gantt,
)

__all__ = [
    "simulate",
    "compare",
    "ComparisonGrid",
    "SchedulerStallError",
    "InvalidDispatchError",
    "FaultPlan",
    "FaultInjector",
    "FaultLog",
    "FaultEvent",
    "AttemptOutcome",
    "FaultError",
    "TaskFailedPermanentlyError",
    "NoProgressError",
    "DeadlineExceededError",
    "OverheadModel",
    "MemoryStats",
    "SimulationResult",
    "DispatchRecord",
    "busy_profile",
    "average_utilization",
    "level_envelopes",
    "LevelEnvelope",
    "idle_gaps",
    "render_gantt",
]
