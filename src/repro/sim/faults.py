"""Deterministic fault injection for the simulation engine.

The paper's schedulers were built for a production system (LogicBlox)
where task re-execution can fail, stall, or lose workers mid-update.
This module describes such adversity as *data*: a :class:`FaultPlan` is
a seeded, JSON-serializable specification of

* **task failures** — a dispatched attempt fails after completing a
  fraction of its work and is retried under a capped exponential
  sim-time backoff with a per-task retry budget. Budget exhaustion
  either raises :class:`TaskFailedPermanentlyError` (``on_exhaustion=
  "raise"``) or, in ``"degrade"`` mode, quarantines the node together
  with its *pure descendants* — the nodes whose re-execution would only
  ever have been triggered through the failed task's lost output — and
  lets the rest of the active graph finish (partial completion);
* **processor churn** — processors fail and recover mid-run, killing
  their running task for requeue and shrinking/growing capacity (never
  below ``min_processors``);
* **stragglers** — selected task attempts run inflated durations.

Determinism is *counter-based*, not stream-based: every decision is
drawn from ``default_rng([seed, kind, node, attempt])``, so it depends
only on its coordinates and never on event interleaving. Replaying the
same plan over the same trace and scheduler therefore yields a
bit-identical :class:`FaultLog` — the property the chaos suite pins.

The engine records every injected event in a :class:`FaultLog` attached
to the :class:`~repro.sim.result.SimulationResult`; the offline checker
(:mod:`repro.verify.invariants`) reconstructs time-varying capacity,
failed-attempt occupancy, and fault-adjusted makespan bounds from it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterator

import numpy as np

__all__ = [
    "FaultPlan",
    "FaultInjector",
    "FaultEvent",
    "FaultLog",
    "AttemptOutcome",
    "FaultError",
    "TaskFailedPermanentlyError",
    "NoProgressError",
    "DeadlineExceededError",
    "capped_backoff",
]


def capped_backoff(
    base: float, factor: float, cap: float, failure_index: int
) -> float:
    """Delay before retry ``failure_index`` (1-based):
    ``min(cap, base * factor**(k-1))``.

    The one backoff law shared by the simulator's :class:`FaultPlan`
    and the live runtime's ``RetryPolicy`` — the live path retries
    units under exactly the semantics the chaos suite pinned for the
    sim.
    """
    if failure_index < 1:
        raise ValueError(f"failure_index must be >= 1, got {failure_index}")
    return float(min(cap, base * factor ** (failure_index - 1)))

# rng sub-stream tags (first element after the seed)
_K_TASK = 1
_K_STRAGGLER = 2
_K_CHURN = 3
_K_JITTER = 4

_EXHAUSTION_MODES = ("raise", "degrade")


# ----------------------------------------------------------------------
# structured errors
# ----------------------------------------------------------------------
class FaultError(RuntimeError):
    """Base class for structured fault-simulation failures."""


class TaskFailedPermanentlyError(FaultError):
    """A task exhausted its retry budget under ``on_exhaustion="raise"``."""

    def __init__(self, node: int, attempts: int, t: float) -> None:
        super().__init__(
            f"task {node} failed permanently after {attempts} attempt(s) "
            f"at t={t:.6g}"
        )
        self.node = node
        self.attempts = attempts
        self.t = t


class NoProgressError(FaultError):
    """The engine's watchdog saw no completed task for too many events."""

    def __init__(self, events: int, pending: int, t: float) -> None:
        super().__init__(
            f"no task completed in the last {events} simulation events "
            f"({pending} task(s) still pending, sim time t={t:.6g}); "
            "likely an unbounded retry loop"
        )
        self.events = events
        self.pending = pending
        self.t = t


class DeadlineExceededError(FaultError):
    """The wall-clock deadline passed before the simulation finished."""

    def __init__(self, deadline: float, t: float, pending: int) -> None:
        super().__init__(
            f"wall-clock deadline of {deadline:.3g}s exceeded at sim "
            f"time t={t:.6g} with {pending} task(s) pending"
        )
        self.deadline = deadline
        self.t = t
        self.pending = pending


# ----------------------------------------------------------------------
# the plan
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of every fault source for one simulation.

    The default-constructed plan injects nothing: ``FaultPlan()`` is the
    identity, and ``simulate(..., faults=FaultPlan())`` must reproduce a
    fault-free run byte for byte.

    Parameters
    ----------
    seed:
        Root of every rng sub-stream; two runs with equal plans produce
        bit-identical fault logs.
    task_fail_prob:
        Per-attempt probability that a dispatched task fails mid-run.
    fail_fraction:
        ``(lo, hi)`` — a failing attempt dies after completing a
        uniform fraction of its (possibly inflated) duration.
    max_retries:
        Retries allowed after the first failure; ``None`` means
        unlimited (pair with a watchdog/deadline). ``0`` means the
        first failure is already permanent.
    backoff_base / backoff_factor / backoff_cap:
        Sim-time delay before retry ``k`` (1-based):
        ``min(cap, base * factor**(k-1))``.
    on_exhaustion:
        ``"raise"`` — abort the simulation with
        :class:`TaskFailedPermanentlyError`; ``"degrade"`` — quarantine
        the node and its pure descendants and finish the rest.
    proc_fail_rate:
        Expected processor failures per unit sim time (exponential
        inter-failure gaps). ``0`` disables churn.
    proc_downtime:
        ``(lo, hi)`` — uniform sim-time repair duration per failure.
    min_processors:
        Capacity floor; failures that would drop below it are recorded
        but not applied.
    straggler_prob:
        Per-attempt probability of duration inflation.
    straggler_factor:
        ``(lo, hi)`` — uniform inflation factor for stragglers.
    """

    seed: int = 0
    task_fail_prob: float = 0.0
    fail_fraction: tuple[float, float] = (0.1, 0.9)
    max_retries: int | None = 3
    backoff_base: float = 0.5
    backoff_factor: float = 2.0
    backoff_cap: float = 8.0
    on_exhaustion: str = "raise"
    proc_fail_rate: float = 0.0
    proc_downtime: tuple[float, float] = (1.0, 5.0)
    min_processors: int = 1
    straggler_prob: float = 0.0
    straggler_factor: tuple[float, float] = (1.5, 4.0)

    def __post_init__(self) -> None:
        if not 0.0 <= self.task_fail_prob <= 1.0:
            raise ValueError(
                f"task_fail_prob must be in [0, 1], got {self.task_fail_prob}"
            )
        if not 0.0 <= self.straggler_prob <= 1.0:
            raise ValueError(
                f"straggler_prob must be in [0, 1], got {self.straggler_prob}"
            )
        for name in ("fail_fraction", "proc_downtime", "straggler_factor"):
            pair = getattr(self, name)
            if len(pair) != 2 or pair[0] > pair[1]:
                raise ValueError(f"{name} must be an ordered (lo, hi) pair")
            object.__setattr__(self, name, (float(pair[0]), float(pair[1])))
        lo, hi = self.fail_fraction
        if lo < 0.0 or hi > 1.0:
            raise ValueError("fail_fraction bounds must lie in [0, 1]")
        if self.straggler_factor[0] < 1.0:
            raise ValueError("straggler_factor must be >= 1")
        if self.max_retries is not None and self.max_retries < 0:
            raise ValueError("max_retries must be >= 0 or None")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff_base/backoff_cap must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.on_exhaustion not in _EXHAUSTION_MODES:
            raise ValueError(
                f"on_exhaustion must be one of {_EXHAUSTION_MODES}, "
                f"got {self.on_exhaustion!r}"
            )
        if self.proc_fail_rate < 0:
            raise ValueError("proc_fail_rate must be >= 0")
        if self.proc_downtime[0] < 0:
            raise ValueError("proc_downtime must be >= 0")
        if self.min_processors < 1:
            raise ValueError("min_processors must be >= 1")

    # ------------------------------------------------------------------
    def is_empty(self) -> bool:
        """True when the plan injects no fault of any kind."""
        return (
            self.task_fail_prob == 0.0
            and self.proc_fail_rate == 0.0
            and self.straggler_prob == 0.0
        )

    def backoff_delay(self, failure_index: int) -> float:
        """Sim-time delay before retry ``failure_index`` (1-based)."""
        return capped_backoff(
            self.backoff_base,
            self.backoff_factor,
            self.backoff_cap,
            failure_index,
        )

    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict[str, Any]:
        """Plain-dict form for ``repro simulate --faults spec.json``."""
        return {
            "seed": self.seed,
            "task_fail_prob": self.task_fail_prob,
            "fail_fraction": list(self.fail_fraction),
            "max_retries": self.max_retries,
            "backoff_base": self.backoff_base,
            "backoff_factor": self.backoff_factor,
            "backoff_cap": self.backoff_cap,
            "on_exhaustion": self.on_exhaustion,
            "proc_fail_rate": self.proc_fail_rate,
            "proc_downtime": list(self.proc_downtime),
            "min_processors": self.min_processors,
            "straggler_prob": self.straggler_prob,
            "straggler_factor": list(self.straggler_factor),
        }

    @classmethod
    def from_json_dict(cls, d: dict[str, Any]) -> "FaultPlan":
        """Build a plan from :meth:`to_json_dict` output (extras rejected)."""
        known = set(cls.__dataclass_fields__)
        extra = set(d) - known
        if extra:
            raise ValueError(f"unknown FaultPlan field(s): {sorted(extra)}")
        kwargs = dict(d)
        for name in ("fail_fraction", "proc_downtime", "straggler_factor"):
            if name in kwargs:
                kwargs[name] = tuple(kwargs[name])
        return cls(**kwargs)


# ----------------------------------------------------------------------
# per-attempt decisions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AttemptOutcome:
    """What the injector decided for one (node, attempt) dispatch."""

    #: this attempt fails mid-run
    fails: bool
    #: fraction of the attempt's duration completed before failing
    fail_fraction: float
    #: duration inflation factor (1.0 = not a straggler)
    inflation: float


class FaultInjector:
    """Stateful decision source driving one simulation run.

    Task/straggler decisions are pure functions of ``(node, attempt)``;
    the only mutable state is the churn cursor, which advances through a
    deterministic failure timeline.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._churn_index = 0

    # -- task attempts -------------------------------------------------
    def attempt_outcome(self, node: int, attempt: int) -> AttemptOutcome:
        """Decide failure/straggler behavior for one dispatch attempt."""
        plan = self.plan
        fails = False
        frac = 0.0
        if plan.task_fail_prob > 0.0:
            rng = np.random.default_rng(
                [plan.seed, _K_TASK, node, attempt]
            )
            fails = bool(rng.random() < plan.task_fail_prob)
            lo, hi = plan.fail_fraction
            frac = float(lo + (hi - lo) * rng.random())
        inflation = 1.0
        if plan.straggler_prob > 0.0:
            rng = np.random.default_rng(
                [plan.seed, _K_STRAGGLER, node, attempt]
            )
            if rng.random() < plan.straggler_prob:
                lo, hi = plan.straggler_factor
                inflation = float(lo + (hi - lo) * rng.random())
        return AttemptOutcome(
            fails=fails, fail_fraction=frac, inflation=inflation
        )

    def exhausted(self, failures: int) -> bool:
        """Whether ``failures`` failures exceed the retry budget."""
        budget = self.plan.max_retries
        return budget is not None and failures > budget

    # -- processor churn ----------------------------------------------
    def churn_timeline(self) -> Iterator[tuple[float, float]]:
        """Yield ``(gap_since_previous_failure, downtime)`` forever.

        The sequence is a deterministic function of the plan seed and
        the churn index alone, so the engine may consume it lazily.
        """
        plan = self.plan
        if plan.proc_fail_rate <= 0.0:
            return
        scale = 1.0 / plan.proc_fail_rate
        while True:
            rng = np.random.default_rng(
                [plan.seed, _K_CHURN, self._churn_index]
            )
            self._churn_index += 1
            gap = float(rng.exponential(scale))
            lo, hi = plan.proc_downtime
            downtime = float(lo + (hi - lo) * rng.random())
            yield gap, downtime


# ----------------------------------------------------------------------
# the log
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FaultEvent:
    """One injected fault (or its consequence) at a sim-time instant.

    ``kind`` is one of:

    * ``"task-fail"`` — an attempt died; ``data`` holds ``start``,
      ``alloc``, ``lost`` (processor-seconds thrown away) and, when a
      retry follows, ``backoff``;
    * ``"task-retry"`` — a failed task became dispatchable again;
    * ``"quarantine"`` — degrade mode suppressed this node (the failed
      task itself or a pure descendant);
    * ``"proc-fail"`` / ``"proc-recover"`` — capacity shrank/grew;
      ``data`` holds ``applied`` (0 when the floor blocked it) and, on
      failures, ``downtime``;
    * ``"proc-kill"`` — a churn failure evicted a running task;
      ``data`` holds ``start``, ``alloc``, ``lost``;
    * ``"straggler"`` — an attempt's duration was inflated; ``data``
      holds ``factor``.
    """

    kind: str
    time: float
    node: int = -1
    attempt: int = 0
    data: dict[str, float] = field(default_factory=dict)

    def to_json_dict(self) -> dict[str, Any]:
        return {
            "kind": self.kind,
            "time": self.time,
            "node": self.node,
            "attempt": self.attempt,
            "data": dict(self.data),
        }

    @classmethod
    def from_json_dict(cls, d: dict[str, Any]) -> "FaultEvent":
        return cls(
            kind=d["kind"],
            time=float(d["time"]),
            node=int(d.get("node", -1)),
            attempt=int(d.get("attempt", 0)),
            data={k: float(v) for k, v in d.get("data", {}).items()},
        )


class FaultLog:
    """Ordered record of every fault event in one run."""

    def __init__(self, events: list[FaultEvent] | None = None) -> None:
        self.events: list[FaultEvent] = list(events or [])

    def record(
        self,
        kind: str,
        time: float,
        node: int = -1,
        attempt: int = 0,
        **data: float,
    ) -> None:
        """Append one event (engine-side)."""
        self.events.append(
            FaultEvent(
                kind=kind,
                time=time,
                node=node,
                attempt=attempt,
                data={k: float(v) for k, v in data.items()},
            )
        )

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FaultLog):
            return NotImplemented
        return self.events == other.events

    def kinds(self) -> dict[str, int]:
        """Event count per kind (for summaries and tests)."""
        out: dict[str, int] = {}
        for e in self.events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def select(self, kind: str) -> list[FaultEvent]:
        """All events of one kind, in order."""
        return [e for e in self.events if e.kind == kind]

    def to_json_list(self) -> list[dict[str, Any]]:
        return [e.to_json_dict() for e in self.events]

    @classmethod
    def from_json_list(cls, items: list[dict[str, Any]]) -> "FaultLog":
        return cls([FaultEvent.from_json_dict(d) for d in items])

    def summary(self) -> str:
        """One-line ``kind=count`` rollup."""
        if not self.events:
            return "no faults"
        parts = [f"{k}={v}" for k, v in sorted(self.kinds().items())]
        return ", ".join(parts)
