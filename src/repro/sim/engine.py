"""Discrete-event scheduling simulator.

Plays one :class:`~repro.tasks.trace.JobTrace` against one
:class:`~repro.schedulers.base.Scheduler` on ``P`` processors:

1. The update dirties the initial tasks; the engine notifies the
   scheduler of every activation and asks it for dispatchable work
   whenever processors are idle.
2. Every dispatch is validated against the ground-truth
   :class:`~repro.tasks.activation.ActivationState` — a scheduler that
   releases a task before its activated ancestors finish aborts the run.
3. Completions deliver realized change signals, revealing the active
   graph ``H`` to the scheduler incrementally (Section II-A's
   "dynamically revealed over time").
4. Scheduler operations are charged inline (see
   :class:`~repro.sim.overhead.OverheadModel`), so makespans include
   scheduling overhead exactly as Tables II/III report them.

Malleable tasks are supported with dynamic processor re-allotment:
leftover idle processors join running malleable tasks, and remaining
work is re-rated — the divisible-load model under which Lemma 5's
``w/P + L`` bound is exact.

Fault tolerance
---------------
``simulate(..., faults=FaultPlan(...))`` threads a deterministic fault
layer through the same event heap (see :mod:`repro.sim.faults`):
injected attempt failures push *failure* events instead of completions,
failed tasks are requeued through :meth:`Scheduler.on_failure` after a
capped exponential sim-time backoff, processor churn shrinks and grows
capacity mid-run (killing running attempts for requeue), and stragglers
run inflated durations. Every injected event lands in the
:class:`~repro.sim.faults.FaultLog` on the result. A no-progress
watchdog and an optional wall-clock ``deadline`` turn unbounded retry
loops into structured errors instead of hangs. With no plan (or an
empty one) the fault layer is inert and the engine's behavior — down to
event ordering and float arithmetic — is unchanged.
"""

from __future__ import annotations

import heapq
import time as _time
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..obs.trace import NULL_SINK, PID_SIM, TraceSink
from ..schedulers.base import ReadinessOracle, Scheduler, SchedulerContext
from ..tasks.model import ExecutionModel, max_useful_processors
from ..tasks.trace import JobTrace
from .faults import (
    DeadlineExceededError,
    FaultInjector,
    FaultLog,
    FaultPlan,
    NoProgressError,
    TaskFailedPermanentlyError,
)
from .overhead import OverheadModel
from .result import DispatchRecord, SimulationResult

__all__ = [
    "simulate",
    "SchedulerStallError",
    "InvalidDispatchError",
]


class SchedulerStallError(RuntimeError):
    """Scheduler found no work while tasks remain and nothing runs."""


class InvalidDispatchError(RuntimeError):
    """Scheduler released a task that is not ground-truth ready."""


# event kinds on the heap; completions sort first only via (time, seq)
_EV_COMPLETE = 0
_EV_FAIL = 1
_EV_RETRY = 2
_EV_PROC_FAIL = 3
_EV_PROC_RECOVER = 4

#: heap compaction threshold: when the heap holds more than this many
#: entries and over 4x the live-event count, superseded (stale-version)
#: entries are dropped eagerly instead of waiting to be popped
_HEAP_COMPACT_MIN = 64


@dataclass
class _Running:
    node: int
    model: int
    alloc: int
    start: float
    span_end: float  # earliest legal finish (start + span)
    work_remaining: float
    last_update: float
    version: int = 0
    #: fault layer: this attempt is doomed to fail
    failing: bool = False
    #: malleable failing attempt dies when work_remaining hits this
    fail_threshold: float = 0.0

    def finish_estimate(self, now: float) -> float:
        if self.model == ExecutionModel.MALLEABLE:
            rem = self.work_remaining - self.alloc * (now - self.last_update)
            rem = max(rem, 0.0)
            return max(self.span_end, now + rem / self.alloc)
        return self.span_end  # sequential/unit: span_end holds the finish

    def fail_estimate(self, now: float) -> float:
        """When this (malleable, failing) attempt hits its fail point."""
        rem = self.work_remaining - self.alloc * (now - self.last_update)
        to_fail = max(rem - self.fail_threshold, 0.0)
        return now + to_fail / self.alloc


def simulate(
    trace: JobTrace,
    scheduler: Scheduler,
    processors: int = 8,
    overhead: OverheadModel | None = None,
    record_schedule: bool = False,
    reallot: bool = True,
    strict: bool = False,
    faults: FaultPlan | None = None,
    deadline: float | None = None,
    watchdog: int | None = None,
    debug_stats: dict | None = None,
    sink: TraceSink = NULL_SINK,
) -> SimulationResult:
    """Run ``scheduler`` on ``trace`` with ``processors`` cores.

    Returns a :class:`SimulationResult`. Raises
    :class:`InvalidDispatchError` / :class:`SchedulerStallError` on
    scheduler misbehavior — these are correctness checks, not expected
    outcomes.

    ``strict=True`` additionally replays the finished run through
    :func:`repro.verify.check_invariants` (precedence, exactly-once,
    capacity, durations, and the paper's makespan bounds — fault-aware
    when a plan injected anything) and raises
    :class:`repro.verify.InvariantViolationError` on any violation.
    Strict mode implies schedule recording; the records are returned on
    the result either way.

    ``faults`` switches on the deterministic fault layer
    (:mod:`repro.sim.faults`). ``deadline`` is a *wall-clock* budget in
    seconds; exceeding it raises
    :class:`~repro.sim.faults.DeadlineExceededError`. ``watchdog``
    bounds the number of consecutive simulation events without a task
    completing (default: automatic when faults are active); exceeding
    it raises :class:`~repro.sim.faults.NoProgressError` instead of
    looping forever on an unbounded retry chain.

    ``debug_stats``, when a dict, receives engine internals after the
    run (currently ``peak_event_heap``) — used by regression tests.

    ``sink`` — a recording :class:`~repro.obs.TraceSink` captures the
    run on the *simulation* clock (Chrome-trace pid
    :data:`~repro.obs.PID_SIM`): one lane per processor with a span per
    task attempt, fault spans for failed attempts, and instant markers
    for retries, quarantines, and processor churn. All instrumentation
    is gated on ``sink.enabled``, so the default no-op sink leaves the
    engine's behavior — including event ordering and float arithmetic —
    byte-identical.
    """
    if processors <= 0:
        raise ValueError(f"processors must be positive, got {processors}")
    record_schedule = record_schedule or strict
    overhead = overhead or OverheadModel()

    injector: FaultInjector | None = None
    if faults is not None and not faults.is_empty():
        injector = FaultInjector(faults)
    fault_log = FaultLog()

    state = trace.fresh_activation_state()
    scheduler.reset_counters()
    oracle = ReadinessOracle(state.is_ready)
    scheduler.bind_oracle(oracle)
    scheduler.bind_sink(sink)
    tracing = sink.enabled
    # sim-clock visualization lanes: one per processor, lowest free
    # lane per dispatched attempt (tracing only — never touches `t`)
    free_lanes: list[int] = list(range(processors)) if tracing else []
    lane_of: dict[int, int] = {}

    def _take_lane(node: int) -> None:
        lane_of[node] = (
            heapq.heappop(free_lanes) if free_lanes else processors
        )

    def _drop_lane(node: int) -> int:
        lane = lane_of.pop(node, processors)
        if lane < processors:
            heapq.heappush(free_lanes, lane)
        return lane
    ctx = SchedulerContext(
        trace=trace,
        processors=processors,
        oracle=oracle,
    )
    scheduler.prepare(ctx)

    work = trace.work
    span = trace.span
    models = trace.models

    t = 0.0
    charged_overhead = 0.0
    capacity = processors
    idle = processors
    busy_proc_seconds = 0.0
    tasks_executed = 0
    total_work_done = 0.0
    select_calls = 0
    schedule: list[DispatchRecord] = []

    running: dict[int, _Running] = {}
    # (time, seq, kind, node, version); (time, seq) is a total order
    event_heap: list[tuple[float, int, int, int, int]] = []
    seq = 0
    peak_heap = 0
    #: pending retry/churn events (always live, never superseded)
    fault_live = 0

    attempts: dict[int, int] = {}
    failures: dict[int, int] = {}
    quarantined: list[int] = []
    # per-node floor for event versions: a re-dispatched attempt must
    # not match stale completion/failure events of a killed predecessor
    ver_base: dict[int, int] = {}

    watchdog_limit = watchdog
    if watchdog_limit is None and injector is not None:
        watchdog_limit = max(10_000, 20 * trace.dag.n_nodes)
    events_since_progress = 0
    wall_start = _time.monotonic() if deadline is not None else 0.0

    def _compact_heap() -> None:
        """Drop superseded completion/failure events eagerly."""
        keep = []
        for ev in event_heap:
            if ev[2] in (_EV_COMPLETE, _EV_FAIL):
                rec = running.get(ev[3])
                if rec is None or rec.version != ev[4]:
                    continue
            keep.append(ev)
        event_heap[:] = keep
        heapq.heapify(event_heap)

    def push_event(etime: float, kind: int, node: int, ver: int) -> None:
        nonlocal seq, peak_heap
        heapq.heappush(event_heap, (etime, seq, kind, node, ver))
        seq += 1
        if len(event_heap) > peak_heap:
            peak_heap = len(event_heap)
        if len(event_heap) > _HEAP_COMPACT_MIN and len(event_heap) > 4 * (
            len(running) + fault_live
        ):
            _compact_heap()

    def push_rec_event(rec: _Running, now: float) -> None:
        if rec.failing:
            push_event(rec.fail_estimate(now), _EV_FAIL, rec.node, rec.version)
        else:
            push_event(
                rec.finish_estimate(now), _EV_COMPLETE, rec.node, rec.version
            )

    def charge(ops_delta: int) -> None:
        nonlocal t, charged_overhead
        cost = overhead.time_for(ops_delta)
        charged_overhead += cost
        if overhead.charge_inline:
            t += cost

    def update_malleable(rec: _Running, now: float) -> None:
        """Advance a malleable task's remaining work to ``now``."""
        if rec.model == ExecutionModel.MALLEABLE:
            rec.work_remaining = max(
                0.0, rec.work_remaining - rec.alloc * (now - rec.last_update)
            )
            rec.last_update = now

    def dispatch(node: int, alloc: int, now: float) -> None:
        nonlocal idle
        try:
            state.mark_dispatched(node)
        except RuntimeError as exc:
            raise InvalidDispatchError(
                f"{scheduler.name} dispatched task {node} illegally: {exc}"
            ) from exc
        idle -= alloc
        att = attempts.get(node, 0) + 1
        attempts[node] = att
        inflation = 1.0
        outcome = None
        if injector is not None:
            outcome = injector.attempt_outcome(node, att)
            inflation = outcome.inflation
            if inflation != 1.0:
                fault_log.record(
                    "straggler", now, node, att, factor=inflation
                )
        m = int(models[node])
        if m == ExecutionModel.MALLEABLE:
            total_w = float(work[node]) * inflation
            rec = _Running(
                node=node,
                model=m,
                alloc=alloc,
                start=now,
                span_end=now + float(span[node]) * inflation,
                work_remaining=total_w,
                last_update=now,
                version=ver_base.get(node, 0),
            )
            if outcome is not None and outcome.fails:
                rec.failing = True
                rec.fail_threshold = total_w * (1.0 - outcome.fail_fraction)
                push_event(rec.fail_estimate(now), _EV_FAIL, node, rec.version)
            else:
                push_event(rec.finish_estimate(now), _EV_COMPLETE, node,
                           rec.version)
        else:
            dur = 1.0 if m == ExecutionModel.UNIT else float(work[node])
            dur *= inflation
            rec = _Running(
                node=node,
                model=m,
                alloc=alloc,
                start=now,
                span_end=now + dur,
                work_remaining=0.0,
                last_update=now,
                version=ver_base.get(node, 0),
            )
            if outcome is not None and outcome.fails:
                rec.failing = True
                push_event(
                    now + dur * outcome.fail_fraction, _EV_FAIL, node,
                    rec.version,
                )
            else:
                push_event(rec.span_end, _EV_COMPLETE, node, rec.version)
        running[node] = rec
        if tracing:
            _take_lane(node)

    def reallot_idle(now: float) -> None:
        """Give leftover idle processors to running malleable tasks."""
        nonlocal idle
        if idle <= 0:
            return
        grew = True
        while idle > 0 and grew:
            grew = False
            for rec in running.values():
                if idle <= 0:
                    break
                if rec.model != ExecutionModel.MALLEABLE:
                    continue
                update_malleable(rec, now)
                cap = max_useful_processors(
                    rec.work_remaining, max(0.0, rec.span_end - now), rec.model
                )
                if rec.alloc < cap:
                    rec.alloc += 1
                    rec.version += 1
                    idle -= 1
                    grew = True
                    push_rec_event(rec, now)

    # ------------------------------------------------------------------
    # fault-layer helpers (never invoked on a fault-free run)
    # ------------------------------------------------------------------
    churn_iter = iter(()) if injector is None else injector.churn_timeline()
    churn_downtimes: deque[float] = deque()
    churn_clock = 0.0

    def schedule_next_proc_failure() -> None:
        nonlocal churn_clock, fault_live
        nxt = next(churn_iter, None)
        if nxt is None:
            return
        gap, downtime = nxt
        churn_clock += gap
        churn_downtimes.append(downtime)
        push_event(churn_clock, _EV_PROC_FAIL, -1, 0)
        fault_live += 1

    if injector is not None and faults is not None:
        if faults.proc_fail_rate > 0.0:
            schedule_next_proc_failure()

    def requeue_task(node: int, now: float) -> None:
        """A failed/killed task becomes dispatchable again."""
        state.clear_dispatch(node)
        fault_log.record(
            "task-retry", now, node, attempts.get(node, 0) + 1
        )
        oracle.push_ready_events([node])
        if tracing:
            sink.record_instant(
                "retry", t=now, tid=processors, pid=PID_SIM,
                args={"node": node, "attempt": attempts.get(node, 0) + 1},
            )
        ops_before = scheduler.ops
        scheduler.on_failure(node, now)
        charge(scheduler.ops - ops_before)

    def quarantine(node: int, now: float) -> None:
        """Degrade mode: resolve ``node`` without running it."""
        dispatchable, suppressed = state.fail_permanently(node)
        quarantined.append(node)
        if tracing:
            sink.record_instant(
                "quarantine", t=now, tid=processors, pid=PID_SIM,
                args={"node": node},
            )
        fault_log.record("quarantine", now, node, attempts.get(node, 0))
        prop_executed = trace.propagation.executed
        for v in suppressed:
            if bool(prop_executed[v]):
                quarantined.append(v)
                fault_log.record("quarantine", now, v)
        oracle.push_ready_events(dispatchable)
        # the scheduler is told the task is settled (its output is
        # permanently stale); pure descendants were never activated, so
        # no scheduler queue can hold them
        ops_before = scheduler.ops
        scheduler.on_complete(node, now)
        charge(scheduler.ops - ops_before)

    def kill_victim(now: float) -> None:
        """A processor died under a running attempt: shrink or evict."""
        nonlocal idle
        shrinkable = [
            r
            for r in running.values()
            if r.model == ExecutionModel.MALLEABLE and r.alloc > 1
        ]
        if shrinkable:
            rec = max(shrinkable, key=lambda r: (r.alloc, r.node))
            update_malleable(rec, now)
            rec.alloc -= 1
            rec.version += 1
            push_rec_event(rec, now)
            return
        node = max(running)
        rec = running.pop(node)
        if tracing:
            sink.record_span(
                f"task:{node}", "sim-kill", rec.start, now,
                tid=_drop_lane(node), pid=PID_SIM,
                args={"node": node, "alloc": rec.alloc, "killed": True},
            )
        ver_base[node] = rec.version + 1
        update_malleable(rec, now)
        idle += rec.alloc - 1  # one core died; the rest return to the pool
        att = attempts[node]
        attempts[node] = att - 1  # churn kills do not consume the budget
        fault_log.record(
            "proc-kill",
            now,
            node,
            att,
            start=rec.start,
            alloc=rec.alloc,
            lost=(now - rec.start) * rec.alloc,
        )
        push_event(now, _EV_RETRY, node, 0)
        _bump_fault_live(1)

    def _bump_fault_live(d: int) -> None:
        nonlocal fault_live
        fault_live += d

    # ------------------------------------------------------------------
    # bootstrap: reveal the update
    # ------------------------------------------------------------------
    dispatchable0, activated0 = state.bootstrap()
    oracle.push_ready_events(dispatchable0)
    ops_before = scheduler.ops
    for v in activated0:
        scheduler.on_activate(v, t)
    charge(scheduler.ops - ops_before)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    while True:
        if deadline is not None and (
            _time.monotonic() - wall_start > deadline
        ):
            raise DeadlineExceededError(
                deadline, t, state.pending_count()
            )

        # dispatch phase: keep asking while the scheduler produces work
        while idle > 0:
            ops_before = scheduler.ops
            chosen = scheduler.select(idle, t)
            select_calls += 1
            charge(scheduler.ops - ops_before)
            if not chosen:
                break
            if len(chosen) > idle:
                raise InvalidDispatchError(
                    f"{scheduler.name} returned {len(chosen)} tasks for "
                    f"{idle} idle processors"
                )
            # first pass: one processor each; extras go to malleable tasks
            mall = [v for v in chosen if models[v] == ExecutionModel.MALLEABLE]
            allocs = {v: 1 for v in chosen}
            spare = idle - len(chosen)
            while spare > 0 and mall:
                progressed = False
                for v in mall:
                    if spare <= 0:
                        break
                    cap = max_useful_processors(
                        float(work[v]), float(span[v]), int(models[v])
                    )
                    if allocs[v] < cap:
                        allocs[v] += 1
                        spare -= 1
                        progressed = True
                if not progressed:
                    break
            for v in chosen:
                dispatch(v, allocs[v], t)

        if reallot:
            reallot_idle(t)

        if not running:
            if state.all_done():
                break
            if fault_live == 0:
                raise SchedulerStallError(
                    f"{scheduler.name} stalled on {trace.name}: "
                    f"{state.pending_count()} task(s) pending, none running, "
                    "none selected"
                )

        # event phase: pop the next valid event
        while True:
            if not event_heap:
                raise SchedulerStallError(
                    f"{scheduler.name} stalled on {trace.name}: "
                    f"{state.pending_count()} task(s) pending, event heap "
                    "empty"
                )
            etime, _, kind, node, ver = heapq.heappop(event_heap)
            if kind in (_EV_COMPLETE, _EV_FAIL):
                rec = running.get(node)
                if rec is not None and rec.version == ver:
                    break
                continue  # superseded version
            rec = None
            break
        t = max(t, etime)

        if watchdog_limit is not None:
            events_since_progress += 1
            if events_since_progress > watchdog_limit:
                raise NoProgressError(
                    events_since_progress, state.pending_count(), t
                )

        if kind == _EV_COMPLETE:
            events_since_progress = 0
            assert rec is not None
            update_malleable(rec, t)
            del running[node]
            idle += rec.alloc
            duration = t - rec.start
            busy_proc_seconds += duration * rec.alloc
            tasks_executed += 1
            total_work_done += float(work[node])
            if tracing:
                sink.record_span(
                    f"task:{node}", "sim-task", rec.start, t,
                    tid=_drop_lane(node), pid=PID_SIM,
                    args={"node": node, "alloc": rec.alloc},
                )
            if record_schedule:
                schedule.append(
                    DispatchRecord(
                        node=node, start=rec.start, finish=t,
                        processors=rec.alloc,
                    )
                )

            dispatchable, newly_activated = state.complete(node)
            oracle.push_ready_events(dispatchable)
            ops_before = scheduler.ops
            for v in newly_activated:
                scheduler.on_activate(v, t)
            scheduler.on_complete(node, t)
            charge(scheduler.ops - ops_before)

        elif kind == _EV_FAIL:
            assert rec is not None and injector is not None
            assert faults is not None
            update_malleable(rec, t)
            del running[node]
            if tracing:
                sink.record_span(
                    f"task:{node}", "sim-fault", rec.start, t,
                    tid=_drop_lane(node), pid=PID_SIM,
                    args={"node": node, "alloc": rec.alloc, "failed": True},
                )
            ver_base[node] = rec.version + 1
            idle += rec.alloc
            lost = (t - rec.start) * rec.alloc
            busy_proc_seconds += lost
            failures[node] = failures.get(node, 0) + 1
            nfail = failures[node]
            if injector.exhausted(nfail):
                fault_log.record(
                    "task-fail", t, node, attempts[node],
                    start=rec.start, alloc=rec.alloc, lost=lost,
                )
                if faults.on_exhaustion == "raise":
                    raise TaskFailedPermanentlyError(node, attempts[node], t)
                quarantine(node, t)
                events_since_progress = 0  # a task settled: progress
            else:
                delay = faults.backoff_delay(nfail)
                fault_log.record(
                    "task-fail", t, node, attempts[node],
                    start=rec.start, alloc=rec.alloc, lost=lost,
                    backoff=delay,
                )
                push_event(t + delay, _EV_RETRY, node, 0)
                _bump_fault_live(1)

        elif kind == _EV_RETRY:
            _bump_fault_live(-1)
            requeue_task(node, t)

        elif kind == _EV_PROC_FAIL:
            _bump_fault_live(-1)
            assert faults is not None
            downtime = churn_downtimes.popleft()
            schedule_next_proc_failure()
            floor = min(faults.min_processors, processors)
            if tracing:
                sink.record_instant(
                    "proc-fail", t=t, tid=processors, pid=PID_SIM,
                    args={"capacity": capacity, "downtime": downtime},
                )
            if capacity <= floor:
                fault_log.record(
                    "proc-fail", t, applied=0.0, downtime=downtime
                )
            else:
                capacity -= 1
                fault_log.record(
                    "proc-fail", t, applied=1.0, downtime=downtime
                )
                push_event(t + downtime, _EV_PROC_RECOVER, -1, 0)
                _bump_fault_live(1)
                if idle > 0:
                    idle -= 1
                else:
                    kill_victim(t)

        elif kind == _EV_PROC_RECOVER:
            _bump_fault_live(-1)
            capacity += 1
            idle += 1
            if tracing:
                sink.record_instant(
                    "proc-recover", t=t, tid=processors, pid=PID_SIM,
                    args={"capacity": capacity},
                )
            fault_log.record("proc-recover", t, applied=1.0)

    makespan = t
    if tracing:
        sink.record_span(
            f"simulate:{trace.name}", "sim-run", 0.0, makespan,
            tid=processors, pid=PID_SIM,
            args={
                "scheduler": scheduler.name,
                "processors": processors,
                "tasks_executed": tasks_executed,
                "scheduler_ops": scheduler.ops,
                "precompute_ops": scheduler.precompute_ops,
                "select_calls": select_calls,
                "charged_overhead": charged_overhead,
            },
        )
    exec_makespan = max(0.0, makespan - (charged_overhead if overhead.charge_inline else 0.0))
    util = (
        busy_proc_seconds / (processors * exec_makespan)
        if exec_makespan > 0
        else 1.0
    )
    extras: dict = {"select_calls": select_calls}
    if quarantined:
        # The full partial-completion set: every ground-truth-active
        # task that did not run. This is a superset of the nodes in the
        # log's quarantine events — suppression can also materialize
        # *later*, when a normal completion resolves a node whose only
        # change signal would have arrived through the quarantined task.
        suppressed_all = np.flatnonzero(
            trace.propagation.executed & ~state.executed
        )
        extras["quarantined_nodes"] = [int(v) for v in suppressed_all]
    result = SimulationResult(
        scheduler_name=scheduler.name,
        trace_name=trace.name,
        processors=processors,
        makespan=makespan,
        execution_makespan=exec_makespan,
        scheduling_overhead=charged_overhead,
        scheduling_ops=scheduler.ops,
        precompute_ops=scheduler.precompute_ops,
        precompute_memory_cells=scheduler.precompute_memory_cells,
        runtime_peak_memory_cells=scheduler.runtime_peak_memory_cells,
        tasks_executed=tasks_executed,
        total_work=total_work_done,
        utilization=min(util, 1.0),
        schedule=schedule,
        extras=extras,
        fault_log=fault_log.events,
    )
    if debug_stats is not None:
        debug_stats["peak_event_heap"] = peak_heap
    if strict:
        # imported here: verify sits above sim in the layering
        from ..verify.invariants import (
            InvariantViolationError,
            check_invariants,
        )

        report = check_invariants(trace, result, reallot=reallot)
        if not report.ok:
            raise InvariantViolationError(report)
    return result
