"""Discrete-event scheduling simulator.

Plays one :class:`~repro.tasks.trace.JobTrace` against one
:class:`~repro.schedulers.base.Scheduler` on ``P`` processors:

1. The update dirties the initial tasks; the engine notifies the
   scheduler of every activation and asks it for dispatchable work
   whenever processors are idle.
2. Every dispatch is validated against the ground-truth
   :class:`~repro.tasks.activation.ActivationState` — a scheduler that
   releases a task before its activated ancestors finish aborts the run.
3. Completions deliver realized change signals, revealing the active
   graph ``H`` to the scheduler incrementally (Section II-A's
   "dynamically revealed over time").
4. Scheduler operations are charged inline (see
   :class:`~repro.sim.overhead.OverheadModel`), so makespans include
   scheduling overhead exactly as Tables II/III report them.

Malleable tasks are supported with dynamic processor re-allotment:
leftover idle processors join running malleable tasks, and remaining
work is re-rated — the divisible-load model under which Lemma 5's
``w/P + L`` bound is exact.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from ..schedulers.base import ReadinessOracle, Scheduler, SchedulerContext
from ..tasks.model import ExecutionModel, max_useful_processors
from ..tasks.trace import JobTrace
from .overhead import OverheadModel
from .result import DispatchRecord, SimulationResult

__all__ = ["simulate", "SchedulerStallError", "InvalidDispatchError"]


class SchedulerStallError(RuntimeError):
    """Scheduler found no work while tasks remain and nothing runs."""


class InvalidDispatchError(RuntimeError):
    """Scheduler released a task that is not ground-truth ready."""


@dataclass
class _Running:
    node: int
    model: int
    alloc: int
    start: float
    span_end: float  # earliest legal finish (start + span)
    work_remaining: float
    last_update: float
    version: int = 0

    def finish_estimate(self, now: float) -> float:
        if self.model == ExecutionModel.MALLEABLE:
            rem = self.work_remaining - self.alloc * (now - self.last_update)
            rem = max(rem, 0.0)
            return max(self.span_end, now + rem / self.alloc)
        return self.span_end  # sequential/unit: span_end holds the finish


def simulate(
    trace: JobTrace,
    scheduler: Scheduler,
    processors: int = 8,
    overhead: OverheadModel | None = None,
    record_schedule: bool = False,
    reallot: bool = True,
    strict: bool = False,
) -> SimulationResult:
    """Run ``scheduler`` on ``trace`` with ``processors`` cores.

    Returns a :class:`SimulationResult`. Raises
    :class:`InvalidDispatchError` / :class:`SchedulerStallError` on
    scheduler misbehavior — these are correctness checks, not expected
    outcomes.

    ``strict=True`` additionally replays the finished run through
    :func:`repro.verify.check_invariants` (precedence, exactly-once,
    capacity, durations, and the paper's makespan bounds) and raises
    :class:`repro.verify.InvariantViolationError` on any violation.
    Strict mode implies schedule recording; the records are returned on
    the result either way.
    """
    if processors <= 0:
        raise ValueError(f"processors must be positive, got {processors}")
    record_schedule = record_schedule or strict
    overhead = overhead or OverheadModel()

    state = trace.fresh_activation_state()
    scheduler.reset_counters()
    oracle = ReadinessOracle(state.is_ready)
    ctx = SchedulerContext(
        trace=trace,
        processors=processors,
        oracle=oracle,
    )
    scheduler.prepare(ctx)

    work = trace.work
    span = trace.span
    models = trace.models

    t = 0.0
    charged_overhead = 0.0
    idle = processors
    busy_proc_seconds = 0.0
    tasks_executed = 0
    total_work_done = 0.0
    select_calls = 0
    schedule: list[DispatchRecord] = []

    running: dict[int, _Running] = {}
    event_heap: list[tuple[float, int, int, int]] = []  # (finish, seq, node, ver)
    seq = 0

    def push_event(rec: _Running, finish: float) -> None:
        nonlocal seq
        heapq.heappush(event_heap, (finish, seq, rec.node, rec.version))
        seq += 1

    def charge(ops_delta: int) -> None:
        nonlocal t, charged_overhead
        cost = overhead.time_for(ops_delta)
        charged_overhead += cost
        if overhead.charge_inline:
            t += cost

    def update_malleable(rec: _Running, now: float) -> None:
        """Advance a malleable task's remaining work to ``now``."""
        if rec.model == ExecutionModel.MALLEABLE:
            rec.work_remaining = max(
                0.0, rec.work_remaining - rec.alloc * (now - rec.last_update)
            )
            rec.last_update = now

    def dispatch(node: int, alloc: int, now: float) -> None:
        nonlocal idle
        try:
            state.mark_dispatched(node)
        except RuntimeError as exc:
            raise InvalidDispatchError(
                f"{scheduler.name} dispatched task {node} illegally: {exc}"
            ) from exc
        idle -= alloc
        m = int(models[node])
        if m == ExecutionModel.MALLEABLE:
            rec = _Running(
                node=node,
                model=m,
                alloc=alloc,
                start=now,
                span_end=now + float(span[node]),
                work_remaining=float(work[node]),
                last_update=now,
            )
            push_event(rec, rec.finish_estimate(now))
        else:
            dur = 1.0 if m == ExecutionModel.UNIT else float(work[node])
            rec = _Running(
                node=node,
                model=m,
                alloc=alloc,
                start=now,
                span_end=now + dur,
                work_remaining=0.0,
                last_update=now,
            )
            push_event(rec, rec.span_end)
        running[node] = rec

    def reallot_idle(now: float) -> None:
        """Give leftover idle processors to running malleable tasks."""
        nonlocal idle
        if idle <= 0:
            return
        grew = True
        while idle > 0 and grew:
            grew = False
            for rec in running.values():
                if idle <= 0:
                    break
                if rec.model != ExecutionModel.MALLEABLE:
                    continue
                update_malleable(rec, now)
                cap = max_useful_processors(
                    rec.work_remaining, max(0.0, rec.span_end - now), rec.model
                )
                if rec.alloc < cap:
                    rec.alloc += 1
                    rec.version += 1
                    idle -= 1
                    grew = True
                    push_event(rec, rec.finish_estimate(now))

    # ------------------------------------------------------------------
    # bootstrap: reveal the update
    # ------------------------------------------------------------------
    dispatchable0, activated0 = state.bootstrap()
    oracle.push_ready_events(dispatchable0)
    ops_before = scheduler.ops
    for v in activated0:
        scheduler.on_activate(v, t)
    charge(scheduler.ops - ops_before)

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    while True:
        # dispatch phase: keep asking while the scheduler produces work
        while idle > 0:
            ops_before = scheduler.ops
            chosen = scheduler.select(idle, t)
            select_calls += 1
            charge(scheduler.ops - ops_before)
            if not chosen:
                break
            if len(chosen) > idle:
                raise InvalidDispatchError(
                    f"{scheduler.name} returned {len(chosen)} tasks for "
                    f"{idle} idle processors"
                )
            # first pass: one processor each; extras go to malleable tasks
            mall = [v for v in chosen if models[v] == ExecutionModel.MALLEABLE]
            allocs = {v: 1 for v in chosen}
            spare = idle - len(chosen)
            while spare > 0 and mall:
                progressed = False
                for v in mall:
                    if spare <= 0:
                        break
                    cap = max_useful_processors(
                        float(work[v]), float(span[v]), int(models[v])
                    )
                    if allocs[v] < cap:
                        allocs[v] += 1
                        spare -= 1
                        progressed = True
                if not progressed:
                    break
            for v in chosen:
                dispatch(v, allocs[v], t)

        if reallot:
            reallot_idle(t)

        if not running:
            if state.all_done():
                break
            raise SchedulerStallError(
                f"{scheduler.name} stalled on {trace.name}: "
                f"{state.pending_count()} task(s) pending, none running, "
                "none selected"
            )

        # completion phase: pop the next valid event
        while True:
            finish, _, node, ver = heapq.heappop(event_heap)
            rec = running.get(node)
            if rec is not None and rec.version == ver:
                break
        t = max(t, finish)
        update_malleable(rec, t)
        del running[node]
        idle += rec.alloc
        duration = t - rec.start
        busy_proc_seconds += duration * rec.alloc
        tasks_executed += 1
        total_work_done += float(work[node])
        if record_schedule:
            schedule.append(
                DispatchRecord(
                    node=node, start=rec.start, finish=t, processors=rec.alloc
                )
            )

        dispatchable, newly_activated = state.complete(node)
        oracle.push_ready_events(dispatchable)
        ops_before = scheduler.ops
        for v in newly_activated:
            scheduler.on_activate(v, t)
        scheduler.on_complete(node, t)
        charge(scheduler.ops - ops_before)

    makespan = t
    exec_makespan = max(0.0, makespan - (charged_overhead if overhead.charge_inline else 0.0))
    util = (
        busy_proc_seconds / (processors * exec_makespan)
        if exec_makespan > 0
        else 1.0
    )
    result = SimulationResult(
        scheduler_name=scheduler.name,
        trace_name=trace.name,
        processors=processors,
        makespan=makespan,
        execution_makespan=exec_makespan,
        scheduling_overhead=charged_overhead,
        scheduling_ops=scheduler.ops,
        precompute_ops=scheduler.precompute_ops,
        precompute_memory_cells=scheduler.precompute_memory_cells,
        runtime_peak_memory_cells=scheduler.runtime_peak_memory_cells,
        tasks_executed=tasks_executed,
        total_work=total_work_done,
        utilization=min(util, 1.0),
        schedule=schedule,
        extras={"select_calls": select_calls},
    )
    if strict:
        # imported here: verify sits above sim in the layering
        from ..verify.invariants import (
            InvariantViolationError,
            check_invariants,
        )

        report = check_invariants(trace, result, reallot=reallot)
        if not report.ok:
            raise InvariantViolationError(report)
    return result
