"""Batch experiment runner: scheduler × trace comparison matrices.

The evaluation pattern used everywhere in the paper — run a set of
schedulers over a set of traces, tabulate makespan and overhead — in
one call:

>>> grid = compare(traces, [LevelBasedScheduler, HybridScheduler], P=8)
>>> print(grid.render())

Scheduler entries may be classes, zero-argument factories, or
instances (instances are reset between runs by ``simulate`` itself).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from ..analysis.tables import format_seconds, render_table
from ..schedulers.base import Scheduler
from ..tasks.trace import JobTrace
from .engine import simulate
from .overhead import OverheadModel
from .result import SimulationResult

__all__ = ["ComparisonGrid", "compare"]

SchedulerSpec = Callable[[], Scheduler]


def _as_factory(spec) -> SchedulerSpec:
    if isinstance(spec, Scheduler):
        return lambda: spec
    return spec  # class or factory


@dataclass
class ComparisonGrid:
    """Results of one scheduler × trace sweep."""

    processors: int
    #: results[trace_name][scheduler_name]
    results: dict[str, dict[str, SimulationResult]] = field(
        default_factory=dict
    )

    def schedulers(self) -> list[str]:
        """Scheduler names, in first-seen column order."""
        names: list[str] = []
        for row in self.results.values():
            for name in row:
                if name not in names:
                    names.append(name)
        return names

    def makespans(self, trace_name: str) -> dict[str, float]:
        """Makespan per scheduler on one trace."""
        return {
            name: r.makespan
            for name, r in self.results[trace_name].items()
        }

    def best(self, trace_name: str) -> str:
        """Scheduler with the smallest makespan on ``trace_name``."""
        row = self.makespans(trace_name)
        return min(row, key=row.get)

    def win_counts(self) -> dict[str, int]:
        """How many traces each scheduler wins (smallest makespan)."""
        wins: dict[str, int] = {name: 0 for name in self.schedulers()}
        for t in self.results:
            wins[self.best(t)] += 1
        return wins

    def render(self, quantity: str = "makespan") -> str:
        """ASCII table: one row per trace, one column per scheduler."""
        if quantity not in ("makespan", "overhead", "ops"):
            raise ValueError(f"unknown quantity {quantity!r}")
        names = self.schedulers()
        rows = []
        for tname, row in self.results.items():
            cells: list[str] = [tname]
            for n in names:
                r = row.get(n)
                if r is None:
                    cells.append("—")
                elif quantity == "makespan":
                    cells.append(format_seconds(r.makespan))
                elif quantity == "overhead":
                    cells.append(format_seconds(r.scheduling_overhead))
                else:
                    cells.append(str(r.scheduling_ops))
            rows.append(cells)
        return render_table(
            ["trace", *names],
            rows,
            title=f"{quantity} (P={self.processors})",
        )


def compare(
    traces: Iterable[JobTrace],
    schedulers: Sequence,
    processors: int = 8,
    overhead: OverheadModel | None = None,
) -> ComparisonGrid:
    """Run every scheduler over every trace and collect the grid."""
    grid = ComparisonGrid(processors=processors)
    factories = [(_as_factory(s)) for s in schedulers]
    for trace in traces:
        row: dict[str, SimulationResult] = {}
        for factory in factories:
            scheduler = factory()
            res = simulate(
                trace, scheduler, processors=processors, overhead=overhead
            )
            row[res.scheduler_name] = res
        grid.results[trace.name] = row
    return grid
