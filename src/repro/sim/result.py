"""Simulation outcomes: the quantities Tables II and III report."""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from .faults import FaultEvent

__all__ = ["SimulationResult", "DispatchRecord"]

_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class DispatchRecord:
    """One task execution in the realized schedule (for timelines/tests).

    ``processors`` is the task's *final* allotment: with dynamic
    re-allotment a malleable task may have started narrower and grown
    as processors freed up (simulate with ``reallot=False`` when an
    analysis needs a constant per-record width).
    """

    node: int
    start: float
    finish: float
    processors: int


@dataclass
class SimulationResult:
    """Everything measured from one (trace, scheduler, P) run.

    ``makespan`` includes the scheduling overhead charged inline but not
    pre-processing, matching the paper's reporting convention.
    """

    scheduler_name: str
    trace_name: str
    processors: int
    #: total simulated time from update to last completion (incl. overhead)
    makespan: float
    #: simulated time spent executing tasks' critical path (excl. overhead)
    execution_makespan: float
    #: simulated seconds of scheduler work (ops × op_cost)
    scheduling_overhead: float
    #: raw scheduler operation count at runtime
    scheduling_ops: int
    #: scheduler operation count during precomputation (levels, intervals)
    precompute_ops: int
    #: precomputed + runtime peak memory cells
    precompute_memory_cells: int
    runtime_peak_memory_cells: int
    #: number of tasks executed
    tasks_executed: int
    #: total task work executed
    total_work: float
    #: busy processor-seconds / (P × execution_makespan)
    utilization: float
    #: per-task schedule, populated when ``record_schedule=True``
    schedule: list[DispatchRecord] = field(default_factory=list)
    #: free-form extras (component breakdowns for hybrid/meta, etc.)
    extras: dict[str, Any] = field(default_factory=dict)
    #: injected-fault record; empty on fault-free runs
    fault_log: list["FaultEvent"] = field(default_factory=list)

    @property
    def total_memory_cells(self) -> int:
        """Precompute plus runtime peak cells."""
        return self.precompute_memory_cells + self.runtime_peak_memory_cells

    # ------------------------------------------------------------------
    # serialization (so results can be shipped to `repro verify`)
    # ------------------------------------------------------------------
    def to_json_dict(self) -> dict[str, Any]:
        """Schema-v1 plain-dict form, including the recorded schedule.

        ``fault_log`` is omitted entirely when empty so that fault-free
        runs serialize byte-identically to pre-fault-layer results.
        """
        d = dataclasses.asdict(self)
        d["schema"] = _SCHEMA_VERSION
        if not d.get("fault_log"):
            d.pop("fault_log", None)
        return d

    @classmethod
    def from_json_dict(cls, d: dict[str, Any]) -> "SimulationResult":
        """Rebuild a result from :meth:`to_json_dict` output."""
        from .faults import FaultEvent

        d = dict(d)
        schema = d.pop("schema", _SCHEMA_VERSION)
        if schema != _SCHEMA_VERSION:
            raise ValueError(f"unsupported result schema {schema!r}")
        schedule = [DispatchRecord(**r) for r in d.pop("schedule", [])]
        fault_log = [
            FaultEvent.from_json_dict(e) for e in d.pop("fault_log", [])
        ]
        return cls(schedule=schedule, fault_log=fault_log, **d)

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.scheduler_name:>14s} on {self.trace_name}: "
            f"makespan={self.makespan:.4f}s "
            f"(exec={self.execution_makespan:.4f}s, "
            f"overhead={self.scheduling_overhead:.4f}s, "
            f"ops={self.scheduling_ops}), tasks={self.tasks_executed}, "
            f"util={self.utilization:.2%}"
        )
