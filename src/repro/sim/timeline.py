"""Schedule timeline analysis: utilization profiles and level progress.

Post-processing over a recorded schedule (``simulate(...,
record_schedule=True)``): busy-processor step functions, per-level
start/finish envelopes (which make the LevelBased barrier visible), idle
gaps, and a textual Gantt rendering for small schedules. Used by the
examples and handy when debugging a scheduler's behavior.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..tasks.trace import JobTrace
from .result import SimulationResult

__all__ = [
    "busy_profile",
    "average_utilization",
    "level_envelopes",
    "idle_gaps",
    "render_gantt",
    "LevelEnvelope",
]


def busy_profile(
    result: SimulationResult, merge_tol: float | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Step function of busy processors: ``(times, busy_after_time)``.

    ``times`` is sorted; ``busy[i]`` holds between ``times[i]`` and
    ``times[i+1]``. Empty schedule yields empty arrays.

    Events are merged by sort-and-sweep: timestamps within ``merge_tol``
    of the current group's anchor collapse into one step. Wall-clock
    recordings (``repro.runtime``) produce start/finish pairs that are
    equal up to float rounding, and exact-key grouping would split them
    into separate steps, showing phantom one-tick utilization dips. The
    default tolerance is a billionth of the schedule's span — far below
    any real gap, wide enough to absorb rounding noise. Pass ``0.0``
    for exact grouping.
    """
    if not result.schedule:
        return np.zeros(0), np.zeros(0, dtype=np.int64)
    raw: list[tuple[float, int]] = []
    for rec in result.schedule:
        raw.append((rec.start, rec.processors))
        raw.append((rec.finish, -rec.processors))
    raw.sort(key=lambda e: e[0])
    if merge_tol is None:
        span = raw[-1][0] - raw[0][0]
        merge_tol = abs(span) * 1e-9
    times_list: list[float] = []
    deltas_list: list[int] = []
    for t, d in raw:
        if times_list and t - times_list[-1] <= merge_tol:
            deltas_list[-1] += d
        else:
            times_list.append(t)
            deltas_list.append(d)
    times = np.array(times_list)
    deltas = np.array(deltas_list, dtype=np.int64)
    return times, np.cumsum(deltas)


def average_utilization(result: SimulationResult) -> float:
    """Busy processor-time / (P × span of the recorded schedule)."""
    times, busy = busy_profile(result)
    if times.size < 2:
        return 0.0
    span = times[-1] - times[0]
    if span <= 0:
        return 1.0
    area = float(np.sum(busy[:-1] * np.diff(times)))
    return area / (result.processors * span)


@dataclass(frozen=True)
class LevelEnvelope:
    """Execution envelope of one DAG level."""

    level: int
    n_tasks: int
    first_start: float
    last_finish: float

    @property
    def width(self) -> float:
        return self.last_finish - self.first_start


def level_envelopes(
    trace: JobTrace, result: SimulationResult
) -> list[LevelEnvelope]:
    """Per-level (first start, last finish) envelopes, sorted by level.

    Under LevelBased the envelopes never interleave (level ℓ+1 starts
    after level ℓ finishes); dependency-exact schedulers overlap them.
    """
    levels = trace.levels
    acc: dict[int, list[tuple[float, float]]] = {}
    for rec in result.schedule:
        acc.setdefault(int(levels[rec.node]), []).append(
            (rec.start, rec.finish)
        )
    out = []
    for lvl in sorted(acc):
        spans = acc[lvl]
        out.append(
            LevelEnvelope(
                level=lvl,
                n_tasks=len(spans),
                first_start=min(s for s, _ in spans),
                last_finish=max(f for _, f in spans),
            )
        )
    return out


def idle_gaps(result: SimulationResult) -> list[tuple[float, float]]:
    """Maximal intervals where *all* processors idle mid-schedule."""
    times, busy = busy_profile(result)
    gaps = []
    for i in range(len(times) - 1):
        if busy[i] == 0 and times[i + 1] > times[i]:
            gaps.append((float(times[i]), float(times[i + 1])))
    return gaps


def render_gantt(
    trace: JobTrace,
    result: SimulationResult,
    width: int = 64,
    max_rows: int = 40,
) -> str:
    """Textual Gantt chart of a small recorded schedule.

    One row per task (earliest start first), ``#`` marking its busy
    span on a ``width``-column time axis. Truncates to ``max_rows``.
    """
    if not result.schedule:
        return "(empty schedule)"
    recs = sorted(result.schedule, key=lambda r: (r.start, r.node))
    t_end = max(r.finish for r in recs)
    if t_end <= 0:
        t_end = 1.0
    lines = [f"time 0 .. {t_end:.3f}  ({len(recs)} tasks)"]
    for rec in recs[:max_rows]:
        a = int(rec.start / t_end * (width - 1))
        b = max(a + 1, int(np.ceil(rec.finish / t_end * (width - 1))))
        bar = " " * a + "#" * (b - a)
        name = trace.dag.name_of(rec.node)[:14]
        lines.append(f"{name:>14s} |{bar.ljust(width)}|")
    if len(recs) > max_rows:
        lines.append(f"... {len(recs) - max_rows} more tasks")
    return "\n".join(lines)
