"""Scheduling-overhead cost model.

The paper's Tables II/III report *makespan* (which "includes the
scheduling overhead, but not any pre-processing cost") and *scheduling
overhead* separately. Production measured wall-clock; our simulator
charges every scheduler an abstract **operation count** — interval-list
cells examined, queue entries scanned, messages sent, level-bucket
pops — and converts counts to time with a single calibration constant
``op_cost`` (seconds per operation).

The conversion is deliberately scheduler-agnostic: all schedulers run
against the same cost model, so relative overheads depend only on how
many operations their algorithms perform, which is the quantity the
paper's asymptotic analysis (Section II-C, Theorem 2) is about.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["OverheadModel", "MemoryStats"]


@dataclass(frozen=True)
class OverheadModel:
    """Converts abstract scheduler operations into simulated seconds.

    Parameters
    ----------
    op_cost:
        Seconds per abstract operation. The default (10 ns) is the cost
        of a cache-resident probe/compare step, and is calibrated so the
        production LogicBlox scheduler's measured overhead on job trace
        #6 (21.69 s over ≈2·10⁹ modeled scan operations) is reproduced.
    charge_inline:
        When true (default), scheduler search time advances the
        simulation clock — the scheduler serializes with dispatch, as in
        "the scheduler wastes time performing many dependency checks to
        find the ready-to-run tasks" (Section VI-C). When false,
        overhead is tallied but does not delay execution (an idealized
        infinitely-fast scheduler; useful for isolating pure makespan).
    """

    op_cost: float = 1e-8
    charge_inline: bool = True

    def time_for(self, ops: int) -> float:
        """Simulated seconds consumed by ``ops`` operations."""
        if ops < 0:
            raise ValueError(f"negative op count {ops}")
        return ops * self.op_cost


@dataclass
class MemoryStats:
    """Resident-memory accounting, in abstract integer cells.

    Used by the O(V²)-vs-O(V) space comparisons and by the
    meta-scheduler's budget ζ (Theorem 10).
    """

    #: cells resident after precomputation (interval lists, level table)
    precompute_cells: int = 0
    #: peak cells used by runtime queues/sets
    runtime_peak_cells: int = 0

    @property
    def total_peak_cells(self) -> int:
        """Precompute plus runtime peak cells."""
        return self.precompute_cells + self.runtime_peak_cells
