"""Deletion-path maintenance: strategies × schedulers on retraction streams.

Drives the update-stream service over two seeded retraction-heavy
streams — ``deletions`` (~80% retractions) and ``mixed`` (real work
interleaved with insert/retract churn that cancels under weighted
coalescing) — once per registered scheduler and once per maintenance
strategy (``dred``, ``bf``, ``counting``). The strategy runs as the
service's shadow oracle: every round's effective delta is replayed
through the engine and its snapshot compared against from-scratch
evaluation, so each serve is itself a differential check.

The ``mixed`` stream is the cancellation showcase: the JSON reports
how many submitted operations the weighted Z-set coalescing removed
(``cancelled_ops``), how many rounds collapsed to no-ops that skipped
compile/plan/execute entirely (``noop_rounds``), and how many index
derives took the exact O(|delta|) weighted path
(``weighted_derives``).

Writes ``BENCH_deletions.json`` at the repo root. ``--quick`` (the CI
``bench-smoke`` mode) shrinks the stream and scheduler set and
enforces the smoke gate: the mixed stream must cancel operations and
skip rounds, and every serve must end byte-identical to from-scratch
evaluation.

Usage::

    PYTHONPATH=src python benchmarks/bench_deletions.py [--quick]
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import pytest
from conftest import run_once

from repro.analysis import render_table
from repro.datalog import seminaive_evaluate
from repro.runtime import UpdateStreamService, live_workload, make_stream
from repro.schedulers import scheduler_registry

BENCH_JSON = Path(__file__).parent.parent / "BENCH_deletions.json"

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
#: non-recursive on purpose: the counting strategy rejects recursion,
#: and the point is all three strategies on the *same* stream
PROGRAM = "flat"
STREAMS = ("deletions", "mixed")
STRATEGIES = ("dred", "bf", "counting")
ROUNDS = 10 if QUICK else 30
BATCH = 3
WORKERS = 4
SEED = 41
SCHEDULERS = (
    ["hybrid", "levelbased"] if QUICK else sorted(scheduler_registry())
)


def serve_stream(sched_name: str, stream: str, strategy: str):
    """One full serve; returns (metrics log, plan-cache stats).

    Every (scheduler, strategy) pair rebuilds the workload from the
    same seed, so all serves of a stream see byte-identical updates —
    and must land on byte-identical materializations.
    """
    wl = live_workload(PROGRAM, seed=SEED)
    svc = UpdateStreamService(
        wl.program,
        wl.edb,
        scheduler_registry()[sched_name](),
        workers=WORKERS,
        maintenance=strategy,
        name=f"bench:{sched_name}:{stream}:{strategy}",
    )
    for batches in make_stream(
        wl, stream, rounds=ROUNDS, batch_size=BATCH
    ):
        for delta in batches:
            svc.submit(delta)
        rep = svc.run_round()
        assert rep is None or rep.materialization_ok
    mat = svc.materialization()
    assert mat is not None
    oracle, _ = seminaive_evaluate(wl.program, svc.database())
    assert mat.as_dict() == oracle.as_dict(), (
        sched_name, stream, strategy
    )
    stats = svc.plan_cache.stats() if svc.plan_cache is not None else None
    return svc.metrics, stats


def test_deletion_streams(benchmark, emit):
    def run():
        out = {}
        for name in SCHEDULERS:
            for stream in STREAMS:
                for strategy in STRATEGIES:
                    out[(name, stream, strategy)] = serve_stream(
                        name, stream, strategy
                    )
        return out

    results = run_once(benchmark, run)

    rows = []
    payload = {
        "schema": 1,
        "quick": QUICK,
        "stream": {
            "program": PROGRAM,
            "kinds": list(STREAMS),
            "rounds": ROUNDS,
            "batch_size": BATCH,
            "workers": WORKERS,
            "seed": SEED,
        },
        "serves": {},
    }
    for (name, stream, strategy), (metrics, stats) in results.items():
        reg = metrics.registry
        cancelled = int(reg.counter("cancelled_ops").value)
        noops = int(reg.counter("noop_rounds").value)
        rps = metrics.rounds_per_second()
        rows.append(
            [name, stream, strategy, f"{rps:.1f}", cancelled, noops,
             stats["relations"]["weighted_derives"]]
        )
        payload["serves"][f"{name}/{stream}/{strategy}"] = {
            "rounds_per_sec": round(rps, 3),
            "cancelled_ops": cancelled,
            "noop_rounds": noops,
            "cache": stats,
        }

    text = render_table(
        ["scheduler", "stream", "strategy", "r/s", "cancelled",
         "noops", "wderives"],
        rows,
        title=(
            f"deletion streams — {PROGRAM}, {ROUNDS} rounds × "
            f"{BATCH} ops, {WORKERS} workers (strategy oracle on"
            + (", quick)" if QUICK else ")")
        ),
    )
    emit("deletions", text)
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    # the gate: cancelled insert/retract pairs must measurably skip
    # work on the mixed stream — operations cancelled, whole rounds
    # skipped, and index maintenance on the weighted path
    for key, s in payload["serves"].items():
        _, stream, _ = key.split("/")
        if stream != "mixed":
            continue
        assert s["cancelled_ops"] > 0, (key, s)
        assert s["noop_rounds"] > 0, (key, s)
        assert s["cache"]["relations"]["weighted_derives"] > 0, (key, s)


if __name__ == "__main__":
    args = [a for a in sys.argv[1:] if a != "--quick"]
    if "--quick" in sys.argv[1:]:
        os.environ["REPRO_BENCH_QUICK"] = "1"
    raise SystemExit(
        pytest.main([__file__, "--benchmark-only", "-q", *args])
    )
