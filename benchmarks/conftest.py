"""Shared infrastructure for the reproduction benchmarks.

Every bench regenerates one table or figure from the paper's evaluation
section, prints it next to the published numbers, and appends it to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can reference the
artifacts. Heavy simulations run exactly once (``benchmark.pedantic``
with one round) — the interesting output is the table, not a timing
distribution over repeated 30-second simulations.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.workloads import make_trace

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def trace_cache():
    """Memoized job-trace generator shared by all benches."""
    cache: dict = {}

    def get(index: int, scale: float = 1.0):
        key = (index, scale)
        if key not in cache:
            cache[key] = make_trace(index, scale=scale)
        return cache[key]

    return get


@pytest.fixture(scope="session")
def emit(request):
    """Print a result block and persist it under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    capman = request.config.pluginmanager.getplugin("capturemanager")

    def _emit(name: str, text: str) -> None:
        block = f"\n{'=' * 72}\n{text}\n"
        if capman is not None:
            with capman.global_and_fixture_disabled():
                print(block)
        else:  # pragma: no cover - capture plugin always present
            print(block)
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")

    return _emit


def run_once(benchmark, fn):
    """Run ``fn`` exactly once under pytest-benchmark's timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
