"""Table II — total makespan of LogicBlox vs LevelBased vs LBL(k).

Job traces #1–#5 on eight processors, LBL depth k ∈ {5, 10, 15, 20}.
The paper's shape claims, asserted below:

* LevelBased trails the production scheduler (level barrier);
* LBL(k) improves monotonically (within tolerance) toward it as k
  grows, and LBL(k≥15) recovers most of the gap;
* all schedulers incur negligible scheduling overhead on these traces
  (Table II's caption).
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.analysis import format_seconds, render_table
from repro.schedulers import (
    LevelBasedScheduler,
    LogicBloxScheduler,
    LookaheadScheduler,
)
from repro.sim import simulate

PROCESSORS = 8
KS = (5, 10, 15, 20)
TRACES = (1, 2, 3, 4, 5)


def _schedulers():
    yield "LogicBlox", LogicBloxScheduler
    yield "LevelBased", LevelBasedScheduler
    for k in KS:
        yield f"LBL(k={k})", (lambda k=k: LookaheadScheduler(k))


@pytest.mark.parametrize("index", TRACES)
def test_table2_row(benchmark, trace_cache, emit, index):
    trace = trace_cache(index)

    def run_row():
        out = {}
        for name, factory in _schedulers():
            res = simulate(trace, factory(), processors=PROCESSORS)
            out[name] = res
        return out

    results = run_once(benchmark, run_row)
    paper = trace.metadata["paper"]

    mk = {name: r.makespan for name, r in results.items()}
    # shape assertions
    assert mk["LevelBased"] > mk["LogicBlox"], "LevelBased should trail"
    assert mk["LBL(k=20)"] <= mk["LBL(k=5)"] * 1.05, "deeper k should help"
    assert mk["LBL(k=20)"] <= mk["LevelBased"], "look-ahead must not hurt"
    gap = mk["LevelBased"] - mk["LogicBlox"]
    recovered = mk["LevelBased"] - mk["LBL(k=20)"]
    assert recovered >= 0.5 * gap, "LBL(20) should recover most of the gap"
    for name, r in results.items():
        assert r.scheduling_overhead <= 0.05 * r.makespan + 0.05, (
            f"{name} overhead should be negligible on trace #{index}"
        )

    header = ["scheduler", "makespan", "overhead", "paper makespan"]
    rows = []
    paper_mk = dict(paper.get("makespan", {}))
    paper_lbl = paper.get("lbl", {})
    for name, r in results.items():
        if name.startswith("LBL"):
            k = int(name.split("=")[1][:-1])
            p = paper_lbl.get(k)
        else:
            p = paper_mk.get(name)
        rows.append(
            [name, format_seconds(r.makespan),
             format_seconds(r.scheduling_overhead), format_seconds(p)]
        )
    emit(
        f"table2_trace{index}",
        render_table(
            header, rows,
            title=f"Table II — job trace #{index} (P={PROCESSORS})",
        ),
    )
