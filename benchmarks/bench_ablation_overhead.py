"""Ablation — scheduling cost and memory scaling (Theorem 2, §II-C, §VI).

Three sweeps on the chain-drip ("killer") instance family:

1. **Scheduling ops vs n** — LevelBased grows Θ(n + L); the pre-fix
   production scan grows ~Θ(n²); the hybrid stays LevelBased-shaped
   because the shared queue never starves (the "100×" anecdote of
   Section VI, reproduced mechanically).
2. **Precompute memory vs V** — the interval lists fragment to Θ(V²)
   cells on this family while the level table stays Θ(V).
3. **Signal propagation vs LevelBased** — brute-force messaging costs
   Θ(V + E) regardless of how small the active set is.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import run_once

from repro.analysis import render_table
from repro.dag import layered_dag
from repro.schedulers import (
    HybridScheduler,
    LevelBasedScheduler,
    LogicBloxScheduler,
    SignalPropagationScheduler,
)
from repro.sim import simulate
from repro.tasks import JobTrace
from repro.workloads import logicblox_killer

WIDTHS = (200, 400, 800, 1600)


def test_ops_scaling_on_killer(benchmark, emit):
    """The '100×' instance: a short chain gates huge ready batches.

    The pre-fix production scheduler re-scans the whole active queue
    every scheduling round — Θ(rounds × queue) = Θ(W²) operations —
    while LevelBased feeds the shared ready queue from its level
    buckets, so the hybrid's scans almost never run and its cost stays
    linear. (``compact_index=True`` isolates this rescan pathology from
    the independent interval-fragmentation pathology, which
    ``test_memory_scaling`` measures.)
    """

    def sweep():
        out = {}
        for w in WIDTHS:
            trace = logicblox_killer(
                12, width_per_step=w, task_work=1e-5, compact_index=True
            )
            row = {}
            for name, factory in [
                ("LevelBased", LevelBasedScheduler),
                ("Hybrid", HybridScheduler),
                ("LogicBlox", LogicBloxScheduler),
            ]:
                res = simulate(trace, factory(), processors=8)
                row[name] = res.scheduling_ops
            out[w] = row
        return out

    results = run_once(benchmark, sweep)

    # growth factors over an 8x width range
    lb_growth = results[WIDTHS[-1]]["LevelBased"] / results[WIDTHS[0]]["LevelBased"]
    lbx_growth = results[WIDTHS[-1]]["LogicBlox"] / results[WIDTHS[0]]["LogicBlox"]
    hy_growth = results[WIDTHS[-1]]["Hybrid"] / results[WIDTHS[0]]["Hybrid"]
    assert lb_growth < 12, "LevelBased must scale ~linearly"
    assert hy_growth < 14, "Hybrid must inherit LevelBased's scaling"
    assert lbx_growth > 4 * lb_growth, "production rescans must blow up"
    final_ratio = results[WIDTHS[-1]]["LogicBlox"] / results[WIDTHS[-1]]["Hybrid"]
    assert final_ratio > 100, "the '100x' gap at the largest size"

    rows = [
        [w, r["LevelBased"], r["Hybrid"], r["LogicBlox"],
         f'{r["LogicBlox"] / r["Hybrid"]:.0f}x']
        for w, r in results.items()
    ]
    emit(
        "ablation_ops_scaling",
        render_table(
            ["width", "LevelBased ops", "Hybrid ops", "LogicBlox ops",
             "LBX/Hybrid"],
            rows,
            title="Ablation — scheduling ops vs queue width "
                  "(chain-drip family, the §VI '100x' synthetic instance)",
        ),
    )


def test_memory_scaling(benchmark, emit):
    def sweep():
        out = {}
        for m in (50, 100, 200):
            trace = logicblox_killer(m)
            lbx, lb = LogicBloxScheduler(), LevelBasedScheduler()
            simulate(trace, lbx, processors=2)
            simulate(trace, lb, processors=2)
            out[m] = (
                trace.dag.n_nodes,
                lb.precompute_memory_cells,
                lbx.precompute_memory_cells,
            )
        return out

    results = run_once(benchmark, sweep)
    sizes = sorted(results)
    v0, lb0, lbx0 = results[sizes[0]]
    v1, lb1, lbx1 = results[sizes[-1]]
    assert lb1 / lb0 == pytest.approx(v1 / v0, rel=0.05), "level table Θ(V)"
    assert lbx1 / lbx0 > 2.5 * (v1 / v0), "interval lists superlinear"

    rows = [
        [m, v, lb, lbx, f"{lbx / v:.1f}"]
        for m, (v, lb, lbx) in results.items()
    ]
    emit(
        "ablation_memory",
        render_table(
            ["m", "V", "LevelBased cells", "LogicBlox cells", "cells/V"],
            rows,
            title="Ablation — precompute memory: Θ(V) levels vs "
                  "fragmenting interval lists (Θ(V²) worst case)",
        ),
    )


def test_signal_propagation_pays_for_the_whole_dag(benchmark, emit):
    def sweep():
        out = {}
        for width in (10, 20, 40):
            rng = np.random.default_rng(0)
            dag = layered_dag([width] * 12, edge_prob=0.2, rng=rng)
            flags = np.zeros(dag.n_edges, dtype=bool)
            trace = JobTrace(
                dag=dag,
                work=np.ones(dag.n_nodes),
                initial_tasks=dag.sources()[:1],
                changed_edges=flags,  # nothing downstream changes: n = 1
            )
            sp, lb = SignalPropagationScheduler(), LevelBasedScheduler()
            simulate(trace, sp, processors=2)
            simulate(trace, lb, processors=2)
            out[width] = (dag.n_nodes + dag.n_edges, sp.ops, lb.ops)
        return out

    results = run_once(benchmark, sweep)
    for width, (ve, sp_ops, lb_ops) in results.items():
        assert sp_ops >= ve, "messages must cover the whole DAG"
        assert lb_ops < 50, "LevelBased touches only the active node"

    rows = [[w, ve, sp, lb] for w, (ve, sp, lb) in results.items()]
    emit(
        "ablation_signalprop",
        render_table(
            ["layer width", "V+E", "SignalProp ops", "LevelBased ops"],
            rows,
            title="Ablation — brute-force signal propagation pays "
                  "Θ(V+E) even when n = 1",
        ),
    )
