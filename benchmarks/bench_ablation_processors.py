"""Ablation — processor scaling and the work-dominated regime (§II-B).

The paper's guarantee story is regime-based: LevelBased's makespan is at
most ``w/P + L`` and therefore a 2-approximation whenever the
computation is *work dominated* (``w/P ≥ L``) — "the case that we want
to optimize for in multithreaded programs". This bench sweeps the
processor count on job trace #5 and reports, per P:

* measured makespans for LevelBased and the production scheduler;
* the ``w/P + Σᵢ Sᵢ`` bound (Lemma 7's form, since durations vary);
* the w/P and critical-path lower bounds, showing where the regime
  flips from work-dominated to span-dominated and speedup saturates.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import run_once

from repro.analysis import render_table
from repro.dag import level_spans
from repro.schedulers import (
    LevelBasedScheduler,
    LogicBloxScheduler,
    lower_bounds,
)
from repro.sim import OverheadModel, simulate

NO_OVERHEAD = OverheadModel(op_cost=0.0)
PS = (1, 2, 4, 8, 16, 32)


def test_processor_scaling(benchmark, trace_cache, emit):
    trace = trace_cache(5)
    w = trace.total_active_work
    active_span = np.where(trace.propagation.executed, trace.span, 0.0)
    sum_si = float(level_spans(trace.levels, active_span).sum())

    def sweep():
        out = {}
        for p in PS:
            lb = simulate(
                trace, LevelBasedScheduler(), processors=p,
                overhead=NO_OVERHEAD,
            )
            lbx = simulate(
                trace, LogicBloxScheduler(), processors=p,
                overhead=NO_OVERHEAD,
            )
            out[p] = (lb.makespan, lbx.makespan, lower_bounds(trace, p))
        return out

    results = run_once(benchmark, sweep)

    prev_lb = float("inf")
    for p, (lb_mk, lbx_mk, bounds) in results.items():
        assert lb_mk <= w / p + sum_si + 1e-6, "Lemma 7 bound violated"
        assert lb_mk <= prev_lb + 1e-9, "more processors must not hurt"
        assert lbx_mk >= bounds["combined"] - 1e-9
        prev_lb = lb_mk
    # at P=1 both schedulers serialize the same work
    lb1, lbx1, _ = results[1]
    assert lb1 == pytest.approx(lbx1, rel=1e-6)
    # saturation: beyond the work-dominated regime speedup stalls at the
    # critical path, so doubling 16 → 32 buys little
    assert results[32][1] > 0.7 * results[16][1]

    rows = []
    for p, (lb_mk, lbx_mk, bounds) in results.items():
        regime = "work" if w / p >= sum_si else "span"
        rows.append(
            [p, f"{lb_mk:.2f}", f"{lbx_mk:.2f}",
             f"{w / p + sum_si:.2f}", f"{bounds['combined']:.2f}", regime]
        )
    emit(
        "ablation_processors",
        render_table(
            ["P", "LevelBased", "LogicBlox", "w/P + ΣSᵢ bound",
             "lower bound", "regime"],
            rows,
            title="Ablation — processor scaling on job trace #5 "
                  "(work-dominated ⇒ 2-approximation)",
        ),
    )

