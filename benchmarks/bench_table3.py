"""Table III — makespan and scheduling overhead of LogicBlox,
LevelBased, and Hybrid on job traces #6–#11 (eight processors).

Shape claims asserted:

* the hybrid's makespan is similar to or better than the better of its
  two components on every trace ("similar or improved total execution
  times");
* the hybrid's scheduling overhead is below the production scheduler's
  on every trace ("consistently reducing the scheduling overhead"),
  with the largest reductions on the shallow traces #6 and #11;
* on #6 the production scheduler's overhead dominates its makespan
  while LevelBased's stays negligible (the Section VI-C analysis).
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.analysis import format_seconds, render_table
from repro.schedulers import (
    HybridScheduler,
    LevelBasedScheduler,
    LogicBloxScheduler,
)
from repro.sim import simulate

PROCESSORS = 8
TRACES = (6, 7, 8, 9, 10, 11)
SCHEDULERS = (
    ("LogicBlox", LogicBloxScheduler),
    ("LevelBased", LevelBasedScheduler),
    ("Hybrid", HybridScheduler),
)


@pytest.mark.parametrize("index", TRACES)
def test_table3_row(benchmark, trace_cache, emit, index):
    trace = trace_cache(index)

    def run_row():
        return {
            name: simulate(trace, factory(), processors=PROCESSORS)
            for name, factory in SCHEDULERS
        }

    results = run_once(benchmark, run_row)
    paper = trace.metadata["paper"]

    hy, lb, lbx = (
        results["Hybrid"],
        results["LevelBased"],
        results["LogicBlox"],
    )
    assert hy.makespan <= min(lb.makespan, lbx.makespan) * 1.10, (
        "hybrid makespan must track the better component"
    )
    assert hy.scheduling_overhead <= lbx.scheduling_overhead, (
        "hybrid must not exceed the production scheduler's overhead"
    )
    if index in (6, 11):
        assert hy.scheduling_overhead < 0.5 * lbx.scheduling_overhead, (
            "shallow traces are where the hybrid overhead win is largest"
        )
        assert lb.scheduling_overhead < 0.1 * lbx.scheduling_overhead
    if index == 6:
        assert lbx.scheduling_overhead > 0.5 * lbx.makespan, (
            "on #6 the production scheduler is overhead-dominated"
        )

    header = [
        "scheduler", "makespan", "overhead",
        "paper makespan", "paper overhead",
    ]
    rows = []
    for name, r in results.items():
        pm = paper.get("makespan", {}).get(name)
        po = paper.get("overhead", {}).get(name)
        rows.append(
            [name, format_seconds(r.makespan),
             format_seconds(r.scheduling_overhead),
             format_seconds(pm), format_seconds(po)]
        )
    emit(
        f"table3_trace{index}",
        render_table(
            header, rows,
            title=f"Table III — job trace #{index} (P={PROCESSORS})",
        ),
    )
