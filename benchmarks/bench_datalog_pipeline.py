"""End-to-end bench — the Datalog pipeline the paper motivates.

For each Datalog workload family: materialize the program, apply a base
update, compile the maintenance computation into a job trace, and run
all three Table-III schedulers over it. Verifies that the incremental
engine lands on the full-recompute database and reports per-workload
trace shapes and scheduler outcomes.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.analysis import format_seconds, render_table
from repro.datalog import IncrementalEngine, seminaive_evaluate
from repro.schedulers import (
    HybridScheduler,
    LevelBasedScheduler,
    LogicBloxScheduler,
)
from repro.sim import simulate
from repro.tasks import trace_stats
from repro.workloads.datalog_workloads import DATALOG_WORKLOADS, compile_workload

PARAMS = {
    "transitive_closure": dict(n=80, extra_edges=40),
    "retail_analytics": dict(n_products=50, n_stores=12, n_sales=250),
    "same_generation": dict(depth=6, fanout=2),
    "retail_rollup": dict(n_products=60, n_stores=18),
    "points_to": dict(n_vars=40, n_stmts=90),
}


@pytest.mark.parametrize("name", sorted(DATALOG_WORKLOADS))
def test_datalog_pipeline(benchmark, emit, name):
    def run():
        cu = compile_workload(name, **PARAMS[name])
        results = {
            s.name: simulate(cu.trace, s, processors=8)
            for s in (
                LevelBasedScheduler(),
                LogicBloxScheduler(),
                HybridScheduler(),
            )
        }
        return cu, results

    cu, results = run_once(benchmark, run)
    trace = cu.trace
    st = trace_stats(trace)

    # the incremental engine must agree with the from-scratch compile
    prog, edb, delta = DATALOG_WORKLOADS[name](**PARAMS[name])
    eng = IncrementalEngine(prog, edb)
    eng.apply(delta)
    assert eng.snapshot() == cu.db_new.as_dict(), (
        "incremental maintenance diverged from recompute"
    )

    for res in results.values():
        assert res.tasks_executed == trace.n_active

    rows = [
        [n, format_seconds(r.makespan), r.scheduling_ops]
        for n, r in results.items()
    ]
    emit(
        f"datalog_{name}",
        render_table(
            ["scheduler", "makespan", "ops"],
            rows,
            title=(
                f"Datalog pipeline — {name}: V={st.n_nodes}, "
                f"E={st.n_edges}, L={st.n_levels}, "
                f"active jobs={st.n_active_jobs} of {st.n_task_nodes} tasks"
            ),
        ),
    )
