"""Figure 2 / Theorem 9 — the tight example for LevelBased.

A unit chain ``j_1 … j_L`` with side tasks ``k_i`` of work = span =
``L − i + 1``. The optimal schedule overlaps every ``k_i`` with the rest
of the chain (makespan Θ(M + L)); LevelBased waits for each ``k_i`` at
its level barrier (makespan Θ(ML) = Θ(L²) at M = L). LBL(k) recovers
the gap once the look-ahead window covers the chain.

The bench sweeps L, verifies the exact closed forms, and asserts the
ratio grows linearly — i.e., the analysis of Theorem 9 is tight.
"""

from __future__ import annotations

import pytest
from conftest import run_once

from repro.analysis import render_table
from repro.schedulers import (
    LevelBasedScheduler,
    LookaheadScheduler,
    OracleScheduler,
)
from repro.sim import OverheadModel, simulate
from repro.workloads import theorem9_example

LS = (8, 16, 32, 64)
NO_OVERHEAD = OverheadModel(op_cost=0.0)


def test_figure2_tight_example(benchmark, emit):
    def sweep():
        out = {}
        for L in LS:
            trace = theorem9_example(L)
            P = 2 * L  # M = L ≤ P, as the construction assumes
            lb = simulate(
                trace, LevelBasedScheduler(), processors=P,
                overhead=NO_OVERHEAD,
            )
            lbl = simulate(
                trace, LookaheadScheduler(L), processors=P,
                overhead=NO_OVERHEAD,
            )
            opt = simulate(
                trace, OracleScheduler(), processors=P,
                overhead=NO_OVERHEAD,
            )
            out[L] = (lb.makespan, lbl.makespan, opt.makespan)
        return out

    results = run_once(benchmark, sweep)

    rows = []
    ratios = []
    for L, (lb, lbl, opt) in results.items():
        # closed forms: OPT = L; LevelBased = L(L-1)/2 + 1
        assert opt == pytest.approx(L, abs=1e-6)
        assert lb == pytest.approx(L * (L - 1) / 2 + 1, abs=1e-6)
        assert lbl <= opt * 1.01 + 1e-9  # full look-ahead recovers optimum
        ratios.append(lb / opt)
        rows.append(
            [L, f"{lb:.0f}", f"{lbl:.0f}", f"{opt:.0f}",
             f"{lb / opt:.2f}", f"{(L - 1) / 2 + 1 / L:.2f}"]
        )
    # Θ(L) growth of the ratio: doubling L ≈ doubles it
    for a, b in zip(ratios, ratios[1:]):
        assert b > 1.7 * a

    emit(
        "figure2",
        render_table(
            ["L", "LevelBased", "LBL(L)", "optimal",
             "ratio", "theory L(L-1)/2L"],
            rows,
            title="Figure 2 / Theorem 9 — tight example (P = 2L, M = L)",
        ),
    )
