"""Ablation — the look-ahead depth trade-off (Sections III & VI-B).

LBL(k)'s bounded BFS buys back LevelBased's barrier idle time at the
price of extra readiness probes; the paper notes a worst case of O(n²)
operations but "much better" behavior with few nodes per level. Two
sweeps:

1. **k sweep on the Theorem 9 instance** — makespan falls from Θ(L²)
   toward the optimum as k grows, while scheduling ops rise gently; the
   knee sits near the paper's observed k ≈ 15.
2. **Ops scaling** — on the blocked-window instance (a long straggler
   parks n blocked candidates at the front of the look-ahead window
   while n quick tasks drain one at a time), LBL's probes grow
   ~quadratically in n while plain LevelBased stays linear.
"""

from __future__ import annotations

import numpy as np
from conftest import run_once

from repro.analysis import render_table
from repro.dag import Dag
from repro.schedulers import LevelBasedScheduler, LookaheadScheduler
from repro.sim import OverheadModel, simulate
from repro.tasks import JobTrace
from repro.workloads import theorem9_example

NO_OVERHEAD = OverheadModel(op_cost=0.0)


def test_lookahead_depth_tradeoff(benchmark, emit):
    L = 48
    trace = theorem9_example(L)

    def sweep():
        out = {}
        for k in (0, 2, 4, 8, 16, 32, 48):
            s = LookaheadScheduler(k)
            res = simulate(
                trace, s, processors=2 * L, overhead=NO_OVERHEAD
            )
            out[k] = (res.makespan, s.ops)
        return out

    results = run_once(benchmark, sweep)

    makespans = [m for m, _ in results.values()]
    assert makespans == sorted(makespans, reverse=True), (
        "makespan must fall monotonically with k on the tight example"
    )
    assert results[48][0] <= L * 1.01  # full look-ahead reaches optimum
    assert results[0][0] >= L * (L - 1) / 2  # none stays at Θ(L²)

    rows = [
        [k, f"{m:.0f}", ops] for k, (m, ops) in results.items()
    ]
    emit(
        "ablation_lbl_tradeoff",
        render_table(
            ["k", "makespan", "scheduling ops"],
            rows,
            title=f"Ablation — LBL(k) on the Theorem 9 instance (L={L})",
        ),
    )


def _blocked_window(n: int) -> JobTrace:
    """The adversarial regime for LBL's probe count: ``n`` pre-activated
    tasks sit blocked behind a long straggler at the front of the level-1
    bucket, while ``n`` quick tasks behind them drain one at a time —
    every dispatch rescans the whole blocked prefix, Θ(n²) probes total.

    Layout: straggler ``s`` (long) feeds t_1..t_n; quick source ``q``
    feeds u_1..u_n. The t's are dirtied directly so they enter the
    bucket first; the u's activate when ``q`` finishes."""
    s, q = 0, 1
    t = list(range(2, 2 + n))
    u = list(range(2 + n, 2 + 2 * n))
    edges = [(s, x) for x in t] + [(q, x) for x in u]
    dag = Dag(2 + 2 * n, edges)
    work = np.ones(2 + 2 * n)
    work[s] = 10.0 * n  # outlasts every u
    work[q] = 0.1
    return JobTrace(
        dag=dag,
        work=work,
        initial_tasks=np.array([s, q] + t),
        changed_edges=np.ones(dag.n_edges, dtype=bool),
        name=f"blocked-window({n})",
    )


def test_lookahead_ops_scaling(benchmark, emit):
    def sweep():
        out = {}
        for n in (50, 100, 200):
            trace = _blocked_window(n)
            lbl = LookaheadScheduler(2)
            lb = LevelBasedScheduler()
            simulate(trace, lbl, processors=2, overhead=NO_OVERHEAD)
            simulate(trace, lb, processors=2, overhead=NO_OVERHEAD)
            out[n] = (trace.n_active, lbl.ops, lb.ops)
        return out

    results = run_once(benchmark, sweep)
    ns = sorted(results)
    n0, lbl0, lb0 = results[ns[0]]
    n1, lbl1, lb1 = results[ns[-1]]
    assert lb1 / lb0 < 1.5 * (n1 / n0), "LevelBased stays ~linear"
    assert lbl1 / lbl0 > 2 * (n1 / n0), "LBL probes grow superlinearly"

    rows = [
        [w, n, lbl, lb, f"{lbl / n:.1f}"]
        for w, (n, lbl, lb) in results.items()
    ]
    emit(
        "ablation_lbl_ops",
        render_table(
            ["n", "n active", "LBL(2) ops", "LevelBased ops",
             "LBL ops / n"],
            rows,
            title="Ablation — LBL's probe cost on the blocked-window "
                  "instance (worst case O(n²))",
        ),
    )
