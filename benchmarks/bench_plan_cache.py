"""Plan-cache speedup: rounds/sec cold vs cached per scheduler.

Drives the update-stream service over the same seeded steady stream
twice per registered scheduler — once compiling every round cold
(``plan_cache=False``) and once through the
:class:`~repro.datalog.plancache.CompiledProgramCache` — and reports
rounds/sec for both plus the speedup. Verification stays ON both ways:
the numbers are for the maintenance loop as actually served, and the
strict materialization comparison doubles as a per-round differential
check that the cached pipeline produced exactly the cold pipeline's
output.

Writes ``BENCH_plan_cache.json`` at the repo root. ``--quick`` (the CI
``bench-smoke`` mode) shrinks the stream and scheduler set and enforces
the smoke gate: cached rounds/sec must not be below cold on the steady
stream.

Usage::

    PYTHONPATH=src python benchmarks/bench_plan_cache.py [--quick]
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import pytest
from conftest import run_once

from repro.analysis import render_table
from repro.datalog import parse_program
from repro.datalog.ast import Program
from repro.runtime import UpdateStreamService, live_workload, make_stream
from repro.schedulers import scheduler_registry

BENCH_JSON = Path(__file__).parent.parent / "BENCH_plan_cache.json"

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
PROGRAM = "pt"
STREAM = "steady"
ROUNDS = 12 if QUICK else 40
WORKERS = 4
SEED = 29
SCHEDULERS = (
    ["hybrid", "levelbased"] if QUICK else sorted(scheduler_registry())
)


#: rules appended for the analyzer measurement: a recursive pair over
#: predicates with no facts anywhere in the stream, so the static
#: analyzer prunes them every round while the no-analysis baseline
#: carries their DAG nodes and (empty) fixpoint iterations
DEAD_RULES_SRC = """
ghost_pts(V, H) :- ghost_alloc(V, H).
ghost_pts(V, H) :- ghost_assign(V, W), ghost_pts(W, H).
"""


def with_dead_rules(program: Program) -> Program:
    extra = parse_program(DEAD_RULES_SRC)
    return Program(tuple(program.rules) + tuple(extra.rules))


def serve_stream(
    sched_name: str,
    plan_cache: bool,
    analyze: bool = True,
    program: Program | None = None,
):
    """One full serve of the seeded stream; returns (metrics, cache stats).

    Both runs rebuild the workload from the same seed, so cold and
    cached see byte-identical update streams.
    """
    wl = live_workload(PROGRAM, seed=SEED)
    svc = UpdateStreamService(
        program if program is not None else wl.program,
        wl.edb,
        scheduler_registry()[sched_name](),
        workers=WORKERS,
        plan_cache=plan_cache,
        analyze=analyze,
        name=f"bench:{sched_name}:{'cached' if plan_cache else 'cold'}",
    )
    for batches in make_stream(wl, STREAM, rounds=ROUNDS):
        for delta in batches:
            svc.submit(delta)
        rep = svc.run_round()
        assert rep is None or rep.materialization_ok
    stats = svc.plan_cache.stats() if svc.plan_cache is not None else None
    return svc.metrics, stats


def test_plan_cache_speedup(benchmark, emit):
    def run():
        out = {}
        for name in SCHEDULERS:
            cold, _ = serve_stream(name, plan_cache=False)
            cached, stats = serve_stream(name, plan_cache=True)
            out[name] = (cold, cached, stats)
        # analyzer delta: the same cached pipeline over a dead-rule-
        # augmented program, with and without static analysis
        dead_prog = with_dead_rules(live_workload(PROGRAM, seed=SEED).program)
        base, _ = serve_stream(
            "hybrid", plan_cache=True, analyze=False, program=dead_prog
        )
        pruned, _ = serve_stream(
            "hybrid", plan_cache=True, analyze=True, program=dead_prog
        )
        out["__analyzer__"] = (base, pruned)
        return out

    results = run_once(benchmark, run)
    ana_base, ana_pruned = results.pop("__analyzer__")

    rows = []
    payload = {
        "schema": 1,
        "quick": QUICK,
        "stream": {
            "program": PROGRAM,
            "kind": STREAM,
            "rounds": ROUNDS,
            "workers": WORKERS,
            "seed": SEED,
        },
        "schedulers": {},
    }
    for name, (cold, cached, stats) in results.items():
        cold_rps = cold.rounds_per_second()
        cached_rps = cached.rounds_per_second()
        speedup = cached_rps / cold_rps if cold_rps else float("inf")
        rows.append(
            [name, f"{cold_rps:.1f}", f"{cached_rps:.1f}",
             f"{speedup:.2f}x", stats["hits"], stats["plan_patches"]]
        )
        payload["schedulers"][name] = {
            "cold_rounds_per_sec": round(cold_rps, 3),
            "cached_rounds_per_sec": round(cached_rps, 3),
            "speedup": round(speedup, 3),
            "cache": stats,
        }

    base_rps = ana_base.rounds_per_second()
    pruned_rps = ana_pruned.rounds_per_second()
    ana_speedup = pruned_rps / base_rps if base_rps else float("inf")
    payload["analyzer"] = {
        "scheduler": "hybrid",
        "dead_rules": 2,
        "no_analysis_rounds_per_sec": round(base_rps, 3),
        "analysis_rounds_per_sec": round(pruned_rps, 3),
        "speedup": round(ana_speedup, 3),
    }
    rows.append(
        ["hybrid+prune", f"{base_rps:.1f}", f"{pruned_rps:.1f}",
         f"{ana_speedup:.2f}x", "-", "-"]
    )

    text = render_table(
        ["scheduler", "cold r/s", "cached r/s", "speedup",
         "hits", "patched"],
        rows,
        title=(
            f"plan cache — {PROGRAM}/{STREAM}, {ROUNDS} rounds, "
            f"{WORKERS} workers (verification on"
            + (", quick)" if QUICK else ")")
        ),
    )
    emit("plan_cache", text)
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    speedups = {
        name: s["speedup"] for name, s in payload["schedulers"].items()
    }
    if QUICK:
        # CI smoke gate: caching must not make steady-stream serving
        # slower for any benched scheduler
        slow = {n: s for n, s in speedups.items() if s < 1.0}
        assert not slow, f"plan cache slower than cold: {slow}"
    else:
        assert max(speedups.values()) >= 1.2, (
            f"plan cache speedup collapsed: {speedups}"
        )
    for name, s in payload["schedulers"].items():
        # every scheduler actually exercised the warm path
        assert s["cache"]["hits"] >= ROUNDS - 2, (name, s["cache"])


if __name__ == "__main__":
    args = [a for a in sys.argv[1:] if a != "--quick"]
    if "--quick" in sys.argv[1:]:
        os.environ["REPRO_BENCH_QUICK"] = "1"
    raise SystemExit(
        pytest.main([__file__, "--benchmark-only", "-q", *args])
    )
