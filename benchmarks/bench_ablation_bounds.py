"""Ablation — the Section IV makespan guarantees, measured.

Sweeps random workloads and reports how close LevelBased comes to its
proven bounds:

* unit tasks (Lemma 3) and fully parallelizable tasks (Lemma 5):
  makespan ≤ w/P + L;
* arbitrary tasks (Lemma 7): makespan ≤ w/P + Σ_i S_i;
* the meta-scheduler (Theorem 10): makespan ≤ 2·min{T_a, T_b} with the
  memory budget respected.
"""

from __future__ import annotations

import numpy as np
import pytest
from conftest import run_once

from repro.analysis import render_table
from repro.dag import layered_dag, level_spans
from repro.schedulers import (
    LevelBasedScheduler,
    LogicBloxScheduler,
    meta_schedule,
)
from repro.sim import OverheadModel, simulate
from repro.tasks import ExecutionModel, JobTrace

NO_OVERHEAD = OverheadModel(op_cost=0.0)
P = 8


def _trace(seed, mode):
    rng = np.random.default_rng(seed)
    dag = layered_dag([12] * 10, edge_prob=0.25, rng=rng, skip_prob=0.2)
    n = dag.n_nodes
    if mode == "unit":
        work = np.ones(n)
        span = work.copy()
        models = np.full(n, ExecutionModel.UNIT, dtype=np.int8)
    elif mode == "parallel":
        work = rng.uniform(0.5, 8.0, n)
        span = np.zeros(n)
        models = np.full(n, ExecutionModel.MALLEABLE, dtype=np.int8)
    else:  # arbitrary
        work = rng.uniform(0.5, 8.0, n)
        span = work * rng.uniform(0.2, 1.0, n)
        models = np.full(n, ExecutionModel.MALLEABLE, dtype=np.int8)
    return JobTrace(
        dag=dag,
        work=work,
        span=span,
        models=models,
        initial_tasks=dag.sources(),
        changed_edges=rng.random(dag.n_edges) < 0.8,
    )


@pytest.mark.parametrize("mode", ["unit", "parallel", "arbitrary"])
def test_levelbased_bound_tightness(benchmark, emit, mode):
    def sweep():
        rows = []
        for seed in range(8):
            trace = _trace(seed, mode)
            res = simulate(
                trace, LevelBasedScheduler(), processors=P,
                overhead=NO_OVERHEAD,
            )
            w = trace.total_active_work
            L = trace.n_levels
            if mode == "arbitrary":
                active_span = np.where(
                    trace.propagation.executed, trace.span, 0.0
                )
                bound = w / P + float(
                    level_spans(trace.levels, active_span).sum()
                )
            else:
                bound = w / P + L
            rows.append((seed, res.makespan, bound))
        return rows

    rows = run_once(benchmark, sweep)
    for seed, makespan, bound in rows:
        assert makespan <= bound + 1e-6, f"bound violated at seed {seed}"
    usage = [m / b for _, m, b in rows]
    table_rows = [
        [seed, f"{m:.2f}", f"{b:.2f}", f"{m / b:.2f}"]
        for seed, m, b in rows
    ]
    table_rows.append(["mean", "", "", f"{np.mean(usage):.2f}"])
    emit(
        f"ablation_bounds_{mode}",
        render_table(
            ["seed", "makespan", "bound", "makespan/bound"],
            table_rows,
            title=f"Ablation — LevelBased vs its bound ({mode} tasks, "
                  f"P={P})",
        ),
    )


def test_meta_scheduler_bound(benchmark, emit):
    def sweep():
        rows = []
        for seed in range(6):
            trace = _trace(seed, "arbitrary")
            res = meta_schedule(
                trace, LogicBloxScheduler(), processors=P, zeta=10**9
            )
            ta = simulate(trace, LogicBloxScheduler(), processors=P).makespan
            tb = simulate(trace, LevelBasedScheduler(), processors=P).makespan
            rows.append((seed, res.makespan, ta, tb, res.winner))
        return rows

    rows = run_once(benchmark, sweep)
    for seed, mk, ta, tb, _ in rows:
        assert mk <= 2 * min(ta, tb) + 1e-6
    emit(
        "ablation_meta",
        render_table(
            ["seed", "meta makespan", "T_a", "T_b", "winner",
             "2*min(Ta,Tb)"],
            [
                [s, f"{mk:.2f}", f"{ta:.2f}", f"{tb:.2f}", w,
                 f"{2 * min(ta, tb):.2f}"]
                for s, mk, ta, tb, w in rows
            ],
            title="Ablation — Theorem 10 meta-scheduler bound",
        ),
    )
