"""Table I — structural statistics of job traces #1–#11.

Regenerates every trace at full scale and reports (nodes, edges,
initial tasks, active jobs, levels) next to the published row. The
node/edge/initial/level columns are generator inputs and must match
exactly; the active-job count is grown stochastically toward the
published target and is asserted to land within 2%.
"""

from __future__ import annotations

from conftest import run_once

from repro.analysis import render_table
from repro.tasks import trace_stats
from repro.workloads import PAPER_TABLE1


def test_table1_structure(benchmark, trace_cache, emit):
    def build_all():
        return {i: trace_stats(trace_cache(i)) for i in range(1, 12)}

    stats = run_once(benchmark, build_all)

    rows = []
    for i in range(1, 12):
        ours = stats[i].table1_row()
        paper = PAPER_TABLE1[i]
        rows.append([f"#{i}", *ours, "", *paper])
        nodes, edges, initial, active, levels = ours
        p_nodes, p_edges, p_initial, p_active, p_levels = paper
        assert nodes == p_nodes, f"trace {i} node count"
        assert edges == p_edges, f"trace {i} edge count"
        assert initial == p_initial, f"trace {i} initial tasks"
        assert levels == p_levels, f"trace {i} levels"
        assert abs(active - p_active) <= max(2, 0.02 * p_active), (
            f"trace {i} active jobs {active} vs paper {p_active}"
        )

    table = render_table(
        ["trace", "nodes", "edges", "init", "active", "levels",
         "|", "paper:nodes", "edges", "init", "active", "levels"],
        rows,
        title="Table I — workload trace statistics (measured vs paper)",
    )
    emit("table1", table)
