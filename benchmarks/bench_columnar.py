"""Columnar storage and executor-backend throughput matrix.

Serves the same seeded streams through every interesting
storage × executor cell and reports rounds/sec:

* ``row/thread`` — the pre-columnar baseline (PR-8 configuration);
* ``columnar/thread`` — interned columnar indexes + vectorized joins;
* ``columnar/process`` — the fork-per-round GIL-escaping backend.

Verification stays ON everywhere, so each cell doubles as a
differential check (per-round materialization compare against
from-scratch evaluation). Writes ``BENCH_columnar.json`` at the repo
root. ``--quick`` (the CI ``bench-smoke`` mode) runs the single
strongest cell and enforces the smoke gate: columnar rounds/sec must
not fall below row on the same stream.

The honest story the numbers tell: columnar wins broadly (biggest on
join-heavy workloads with wide deltas — the points-to cell), while the
process backend *loses* at these scales: fork-per-round pays a
copy-on-write page-fault tax over the inherited working set that
outweighs GIL escape until per-unit compute dominates. See DESIGN.md
§16 for the full analysis.

Usage::

    PYTHONPATH=src python benchmarks/bench_columnar.py [--quick]
"""

from __future__ import annotations

import json
import os
import sys
from pathlib import Path

import pytest
from conftest import run_once

from repro.analysis import render_table
from repro.runtime import (
    UpdateStreamService,
    live_workload,
    make_stream,
    process_backend_available,
)
from repro.schedulers import scheduler_registry

BENCH_JSON = Path(__file__).parent.parent / "BENCH_columnar.json"

QUICK = bool(os.environ.get("REPRO_BENCH_QUICK"))
WORKERS = 4
SEED = 17
SCHEDULER = "hybrid"
ROUNDS = 8 if QUICK else 20

#: workload cells: (cell name, workload, stream kind, factory kwargs,
#: batch size). The points-to cell is the headline — many wide rules
#: over a dense alias graph is where vectorized joins bite hardest.
CELLS = [
    ("pt/steady/b12", "pt", "steady", {"n_vars": 40, "n_stmts": 100}, 12),
    ("tc/steady", "tc", "steady", {}, 2),
    ("retail/bursty", "retail", "bursty", {}, 2),
]
if QUICK:
    CELLS = CELLS[:1]


def serve_stream(cell, storage: str, executor: str):
    """One full serve of a cell's seeded stream; returns MetricsLog."""
    name, program, kind, kwargs, batch = cell
    wl = live_workload(program, seed=SEED, **kwargs)
    svc = UpdateStreamService(
        wl.program,
        wl.edb,
        scheduler_registry()[SCHEDULER](),
        workers=WORKERS,
        storage=storage,
        executor=executor,
        name=f"bench:{name}:{storage}/{executor}",
    )
    for batches in make_stream(wl, kind, rounds=ROUNDS, batch_size=batch):
        for delta in batches:
            svc.submit(delta)
        rep = svc.run_round()
        assert rep is None or rep.materialization_ok
    return svc.metrics


def test_columnar_matrix(benchmark, emit):
    with_process = not QUICK and process_backend_available()

    def run():
        out = {}
        for cell in CELLS:
            row = serve_stream(cell, "row", "thread")
            col = serve_stream(cell, "columnar", "thread")
            proc = (
                serve_stream(cell, "columnar", "process")
                if with_process
                else None
            )
            out[cell[0]] = (row, col, proc)
        return out

    results = run_once(benchmark, run)

    rows = []
    payload = {
        "schema": 1,
        "quick": QUICK,
        "scheduler": SCHEDULER,
        "workers": WORKERS,
        "rounds": ROUNDS,
        "seed": SEED,
        "cells": {},
    }
    for name, (row_log, col_log, proc_log) in results.items():
        row_rps = row_log.rounds_per_second()
        col_rps = col_log.rounds_per_second()
        speedup = col_rps / row_rps if row_rps else float("inf")
        proc_rps = proc_log.rounds_per_second() if proc_log else None
        interned = col_log.rounds[-1].intern_table_size
        rows.append(
            [
                name,
                f"{row_rps:.1f}",
                f"{col_rps:.1f}",
                f"{speedup:.2f}x",
                f"{proc_rps:.1f}" if proc_rps is not None else "-",
                interned,
            ]
        )
        payload["cells"][name] = {
            "row_thread_rounds_per_sec": round(row_rps, 3),
            "columnar_thread_rounds_per_sec": round(col_rps, 3),
            "columnar_speedup": round(speedup, 3),
            "columnar_process_rounds_per_sec": (
                round(proc_rps, 3) if proc_rps is not None else None
            ),
            "intern_table_size": interned,
            "columnar_builds": sum(
                m.columnar_builds for m in col_log.rounds
            ),
            "columnar_probes": sum(
                m.columnar_probes for m in col_log.rounds
            ),
        }

    best = max(
        payload["cells"].items(), key=lambda kv: kv[1]["columnar_speedup"]
    )
    payload["headline"] = {
        "cell": best[0],
        "columnar_speedup": best[1]["columnar_speedup"],
    }

    text = render_table(
        ["cell", "row r/s", "columnar r/s", "speedup",
         "process r/s", "interned"],
        rows,
        title=(
            f"columnar matrix — {SCHEDULER}, {ROUNDS} rounds, "
            f"{WORKERS} workers (verification on"
            + (", quick)" if QUICK else ")")
        ),
    )
    emit("columnar", text)
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    # smoke gate: columnar must not lose to row on any benched cell
    slow = {
        n: c["columnar_speedup"]
        for n, c in payload["cells"].items()
        if c["columnar_speedup"] < 1.0
    }
    assert not slow, f"columnar slower than row: {slow}"
    if not QUICK:
        assert payload["headline"]["columnar_speedup"] >= 1.5, (
            f"columnar speedup collapsed: {payload['headline']}"
        )


if __name__ == "__main__":
    args = [a for a in sys.argv[1:] if a != "--quick"]
    if "--quick" in sys.argv[1:]:
        os.environ["REPRO_BENCH_QUICK"] = "1"
    raise SystemExit(
        pytest.main([__file__, "--benchmark-only", "-q", *args])
    )
