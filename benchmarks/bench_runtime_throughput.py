"""Live-serving throughput — the runtime's perf baseline.

For every registered scheduler: drive the update-stream service over
the same seeded retail stream and report rounds/sec plus p50/p99
round latency. Verification stays ON — the numbers are for the
maintenance loop as actually served (compile + execute + verify), not
a stripped-down hot path. Besides the usual results/ text block, this
bench writes ``BENCH_runtime.json`` at the repo root to seed the
performance trajectory for later optimisation PRs.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest
from conftest import run_once

from repro.analysis import render_table
from repro.runtime import (
    UpdateStreamService,
    live_workload,
    make_stream,
    process_backend_available,
)
from repro.schedulers import scheduler_registry

BENCH_JSON = Path(__file__).parent.parent / "BENCH_runtime.json"

ROUNDS = 30
WORKERS = 4
SEED = 17


def serve_stream(
    sched_name: str, executor: str = "thread", storage: str = "columnar"
):
    wl = live_workload("retail", seed=SEED)
    svc = UpdateStreamService(
        wl.program,
        wl.edb,
        scheduler_registry()[sched_name](),
        workers=WORKERS,
        executor=executor,
        storage=storage,
        name=f"bench:{sched_name}:{storage}/{executor}",
    )
    for batches in make_stream(wl, "bursty", rounds=ROUNDS):
        for delta in batches:
            svc.submit(delta)
        rep = svc.run_round()
        assert rep is not None and rep.materialization_ok
    return svc.metrics


#: executor × storage cells benched on one scheduler (hybrid) to put
#: the backend choice on the same retail/bursty stream as the
#: scheduler sweep; the process cell is skipped off-linux
BACKEND_CELLS = [
    ("thread", "row"),
    ("thread", "columnar"),
] + ([("process", "columnar")] if process_backend_available() else [])


def test_runtime_throughput(benchmark, emit):
    def run():
        logs = {
            name: serve_stream(name)
            for name in sorted(scheduler_registry())
        }
        cells = {
            f"{storage}/{executor}": serve_stream(
                "hybrid", executor=executor, storage=storage
            )
            for executor, storage in BACKEND_CELLS
        }
        return logs, cells

    logs, cells = run_once(benchmark, run)

    rows = []
    payload = {
        "schema": 1,
        "stream": {
            "program": "retail",
            "kind": "bursty",
            "rounds": ROUNDS,
            "workers": WORKERS,
            "seed": SEED,
        },
        "schedulers": {},
    }
    for name, log in logs.items():
        pcts = log.latency_percentiles((50.0, 99.0))
        rows.append(
            [
                name,
                f"{log.rounds_per_second():.1f}",
                f"{pcts['p50'] * 1e3:.2f}",
                f"{pcts['p99'] * 1e3:.2f}",
            ]
        )
        payload["schedulers"][name] = {
            "rounds_per_sec": round(log.rounds_per_second(), 3),
            "p50_latency_ms": round(pcts["p50"] * 1e3, 3),
            "p99_latency_ms": round(pcts["p99"] * 1e3, 3),
            "total_tasks_executed": sum(
                r.tasks_executed for r in log.rounds
            ),
        }

    payload["backends"] = {}
    backend_rows = []
    for cell_name, log in cells.items():
        pcts = log.latency_percentiles((50.0, 99.0))
        backend_rows.append(
            [
                cell_name,
                f"{log.rounds_per_second():.1f}",
                f"{pcts['p50'] * 1e3:.2f}",
                f"{pcts['p99'] * 1e3:.2f}",
            ]
        )
        payload["backends"][cell_name] = {
            "scheduler": "hybrid",
            "rounds_per_sec": round(log.rounds_per_second(), 3),
            "p50_latency_ms": round(pcts["p50"] * 1e3, 3),
            "p99_latency_ms": round(pcts["p99"] * 1e3, 3),
        }

    text = render_table(
        ["scheduler", "rounds/s", "p50 ms", "p99 ms"],
        rows,
        title=(
            f"runtime throughput — retail/bursty, {ROUNDS} rounds, "
            f"{WORKERS} workers (verification on)"
        ),
    ) + "\n\n" + render_table(
        ["storage/executor", "rounds/s", "p50 ms", "p99 ms"],
        backend_rows,
        title="backend matrix — hybrid scheduler, same stream",
    )
    emit("runtime_throughput", text)
    BENCH_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    for name, stats in payload["schedulers"].items():
        assert stats["rounds_per_sec"] > 0, name
    for name, stats in payload["backends"].items():
        assert stats["rounds_per_sec"] > 0, name


if __name__ == "__main__":
    pytest.main([__file__, "--benchmark-only", "-q"])
