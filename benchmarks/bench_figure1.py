"""Figure 1 — the production computation DAG and its activation pattern.

The paper's Figure 1 shows job trace #1: 64,910 predicate nodes,
101,327 edges, 20,134 activatable tasks; an update to five initial
tasks activates 532 of the 1,680 descendant tasks. This bench
regenerates the trace, verifies those counts, reports the
most-descendants-don't-recompute ratio, and writes a DOT excerpt of the
neighborhood of the initial tasks (the full DAG "printed at 300 DPI
would be a mile long").
"""

from __future__ import annotations

from pathlib import Path

from conftest import RESULTS_DIR, run_once

import numpy as np

from repro.analysis import render_table
from repro.dag.dot import roles_from_trace_sets, to_dot
from repro.tasks import trace_stats


def test_figure1(benchmark, trace_cache, emit):
    trace = run_once(benchmark, lambda: trace_cache(1))
    st = trace_stats(trace)

    assert st.n_nodes == 64910
    assert st.n_edges == 101327
    assert st.n_initial == 5
    # most descendants of the initial tasks do NOT need recomputation
    activated_desc = st.n_active_jobs - st.n_initial
    assert activated_desc < 0.6 * st.n_descendants

    rows = [
        ["predicate nodes", st.n_nodes, 64910],
        ["edges", st.n_edges, 101327],
        ["activatable task nodes", st.n_task_nodes, 20134],
        ["initial tasks", st.n_initial, 5],
        ["task descendants of the update", st.n_descendants, 1680],
        ["activated descendants", activated_desc, 532 - 5],
        ["activated / descendants",
         f"{activated_desc / st.n_descendants:.1%}",
         f"{(532 - 5) / 1680:.1%}"],
    ]
    emit(
        "figure1",
        render_table(
            ["quantity", "measured", "paper"],
            rows,
            title="Figure 1 — job trace #1 activation anatomy",
        ),
    )

    # DOT excerpt: the induced neighborhood of the first initial task
    prop = trace.propagation
    executed = set(np.flatnonzero(prop.executed).tolist())
    roles = roles_from_trace_sets(
        sources=trace.initial_tasks.tolist(),
        activated=np.flatnonzero(prop.activated).tolist(),
        executed=list(executed),
        descendants=[],
    )
    dot = to_dot(trace.dag, roles=roles, max_nodes=400)
    RESULTS_DIR.mkdir(exist_ok=True)
    Path(RESULTS_DIR / "figure1_excerpt.dot").write_text(dot)
    assert dot.startswith("digraph")
