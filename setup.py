"""Legacy shim: this environment lacks the ``wheel`` package, so
``pip install -e . --no-build-isolation --no-use-pep517`` goes through
setup.py develop. All metadata lives in pyproject.toml."""
from setuptools import setup

setup()
