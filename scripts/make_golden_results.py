"""Regenerate the no-fault golden results under tests/sim/golden/.

The goldens pin the engine's exact numeric output (makespan, schedule,
op counts) for a fixed set of (trace, scheduler) pairs. The fault layer
must be a strict superset of the original engine: simulating with an
empty :class:`~repro.sim.faults.FaultPlan` — or none at all — must
reproduce these files byte for byte. Regenerate only when an
*intentional* engine behavior change lands, and say so in the commit.

Usage::

    PYTHONPATH=src python scripts/make_golden_results.py
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.dag import Dag
from repro.schedulers import (
    HybridScheduler,
    LevelBasedScheduler,
    LogicBloxScheduler,
    LookaheadScheduler,
    OracleScheduler,
    SignalPropagationScheduler,
)
from repro.sim import simulate
from repro.tasks import JobTrace

OUT_DIR = Path(__file__).parents[1] / "tests" / "sim" / "golden"

FACTORIES = {
    "levelbased": LevelBasedScheduler,
    "lbl3": lambda: LookaheadScheduler(3),
    "logicblox": lambda: LogicBloxScheduler("fresh"),
    "logicblox-cached": lambda: LogicBloxScheduler("cached"),
    "signalprop": SignalPropagationScheduler,
    "hybrid": HybridScheduler,
    "oracle": OracleScheduler,
}


def diamond_trace() -> JobTrace:
    dag = Dag(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    return JobTrace(
        dag=dag,
        work=np.ones(4),
        initial_tasks=np.array([0]),
        changed_edges=np.ones(dag.n_edges, dtype=bool),
        name="diamond",
    )


def random_trace(seed: int) -> JobTrace:
    from repro.dag import layered_dag

    rng = np.random.default_rng(seed)
    dag = layered_dag([3, 5, 8, 8, 5, 3], edge_prob=0.3, rng=rng,
                      skip_prob=0.3)
    n_init = 1 + int(rng.integers(0, min(3, dag.sources().size)))
    return JobTrace(
        dag=dag,
        work=rng.uniform(0.5, 3.0, dag.n_nodes),
        initial_tasks=dag.sources()[:n_init],
        changed_edges=rng.random(dag.n_edges) < 0.6,
        name=f"rand{seed}",
    )


DLOG_PROGRAM = """
path(X, Y) :- edge(X, Y).
path(X, Z) :- path(X, Y), edge(Y, Z).
"""

DLOG_EDGES = [(0, 1), (1, 2), (2, 3), (3, 4)]


def dlog_deltas():
    from repro.datalog import Delta

    return [
        Delta().insert("edge", (4, 5)).delete("edge", (1, 2)),
        Delta().insert("edge", (1, 2)).insert("edge", (5, 6)),
    ]


def datalog_trace(cached: bool = True) -> JobTrace:
    """A real compiled-update trace, via the plan cache or cold.

    The goldens are *generated* through the cached path and *checked*
    (tests/sim/test_faults.py) through the cold path — byte-identity of
    the two pipelines is part of what these files pin.
    """
    from repro.datalog import (
        CompiledProgramCache,
        Database,
        compile_update,
        parse_program,
    )

    program = parse_program(DLOG_PROGRAM)
    edb = Database()
    edb.relation("edge", 2)
    for t in DLOG_EDGES:
        edb.add_fact("edge", t)
    cache = CompiledProgramCache(program) if cached else None
    cu = None
    for delta in dlog_deltas():
        if cache is not None:
            cu = cache.compile(program, edb, delta, name="dlog")
            cache.commit(cu)
        else:
            cu = compile_update(program, edb, delta, name="dlog")
        edb = cu.edb_new
    assert cu is not None
    if cache is not None:
        # the golden round must come from the warm path, not a cold fill
        assert cache.hits >= 1
    return cu.trace


def main() -> None:
    OUT_DIR.mkdir(parents=True, exist_ok=True)
    traces = [
        diamond_trace(),
        random_trace(7),
        random_trace(23),
        datalog_trace(cached=True),
    ]
    for trace in traces:
        for label, factory in FACTORIES.items():
            res = simulate(
                trace, factory(), processors=4, record_schedule=True
            )
            path = OUT_DIR / f"{trace.name}__{label}.json"
            path.write_text(
                json.dumps(res.to_json_dict(), sort_keys=True) + "\n"
            )
            print(f"wrote {path}")


if __name__ == "__main__":
    main()
