#!/usr/bin/env python
"""CI gate: every shipped Datalog program must analyze clean.

Runs the whole-program static analyzer (:mod:`repro.verify.program`)
over every ``.dlog`` file in ``examples/`` and every program factory in
:mod:`repro.workloads.datalog_workloads`, and fails on any unsuppressed
finding — warnings included, since shipped programs should be exemplary.

Usage::

    PYTHONPATH=src python scripts/lint_programs.py
"""

from __future__ import annotations

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.verify import format_findings  # noqa: E402
from repro.verify.program import analyze_path, analyze_program  # noqa: E402
from repro.workloads.datalog_workloads import DATALOG_WORKLOADS  # noqa: E402


def main() -> int:
    total = 0
    checked = 0

    for path in sorted((ROOT / "examples").glob("*.dlog")):
        checked += 1
        analysis = analyze_path(path)
        if analysis.findings:
            total += len(analysis.findings)
            print(format_findings(analysis.findings))
        else:
            print(f"{path.relative_to(ROOT)}: clean")

    for name, factory in sorted(DATALOG_WORKLOADS.items()):
        checked += 1
        program, _edb, _delta = factory()
        analysis = analyze_program(program, path=f"workload:{name}")
        if analysis.findings:
            total += len(analysis.findings)
            print(format_findings(analysis.findings))
        else:
            print(f"workload:{name}: clean")

    if total:
        print(f"program-lint: {total} finding(s) in {checked} program(s)")
        return 1
    print(f"program-lint: {checked} program(s) clean")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
