#!/usr/bin/env python
"""Validate a Chrome trace_event JSON file against the minimal schema.

Usage::

    python scripts/validate_chrome_trace.py trace.json [more.json ...]

Exit code 0 when every file passes; 1 with one line per violation
otherwise. The schema is the one ``repro trace`` promises (see
``repro.obs.validate_chrome_trace``): a ``traceEvents`` list of
complete ("X"), instant ("i"), and metadata ("M") events with the
required per-phase fields. CI runs this over the smoke-test trace
artifact.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs import validate_chrome_trace  # noqa: E402


def main(argv: list[str]) -> int:
    if not argv:
        print("usage: validate_chrome_trace.py TRACE_JSON [...]",
              file=sys.stderr)
        return 2
    failures = 0
    for arg in argv:
        try:
            payload = json.loads(Path(arg).read_text())
        except (OSError, ValueError) as exc:
            print(f"{arg}: unreadable: {exc}", file=sys.stderr)
            failures += 1
            continue
        errors = validate_chrome_trace(payload)
        if errors:
            for e in errors:
                print(f"{arg}: {e}", file=sys.stderr)
            failures += 1
        else:
            n = len(payload["traceEvents"])
            print(f"{arg}: ok ({n} events)")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
